// Common source machinery.
//
// A Source is an event-driven packet generation process.  Generated packets
// pass through an optional edge token-bucket policer (nonconforming packets
// are dropped at the source, per the paper's Appendix) and are then emitted
// into the network through an EmitFn — typically Host::inject plus stats
// bookkeeping, wired by core::CszNetworkBuilder or by the experiment code.

#pragma once

#include <functional>
#include <optional>

#include "net/flow.h"
#include "net/packet.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "traffic/token_bucket.h"

namespace ispn::traffic {

/// Delivers an emitted packet into the network.
using EmitFn = std::function<void(net::PacketPtr)>;

/// Base class handling identity, policing and emission accounting.
class Source {
 public:
  /// `stats` may be null (no accounting).  If `police` is set, packets not
  /// conforming to it at generation time are dropped at the source.
  Source(sim::Simulator& sim, net::FlowId flow, net::NodeId src,
         net::NodeId dst, EmitFn emit, net::FlowStats* stats,
         std::optional<TokenBucketSpec> police)
      : sim_(sim),
        flow_(flow),
        src_(src),
        dst_(dst),
        emit_(std::move(emit)),
        stats_(stats) {
    if (police) policer_.emplace(*police);
  }

  virtual ~Source() = default;
  Source(const Source&) = delete;
  Source& operator=(const Source&) = delete;

  /// Starts the generation process at simulated time `at`.
  virtual void start(sim::Time at) = 0;

  /// Stops generating after the current event chain unwinds.  Every
  /// concrete source implements this; the scenario runner relies on it to
  /// tear flows down mid-run.
  virtual void stop() = 0;

  /// Service class stamped onto each generated packet.
  void set_service(net::ServiceClass service, std::uint8_t priority = 0) {
    service_ = service;
    priority_ = priority;
  }

  /// §10 drop preference: marks packet `seq` as less important when the
  /// predicate returns true (e.g. every other packet for a layered codec).
  using ImportanceMarker = std::function<bool(std::uint64_t seq)>;
  void set_importance_marker(ImportanceMarker marker) {
    marker_ = std::move(marker);
  }

  /// Draws packet storage from `pool` instead of the process-wide default
  /// (sharded runs hand each source its domain's pool).
  void set_pool(net::PacketPool* pool) { pool_ = pool; }

  /// Stamps subsequent packets with routing epoch `epoch` (bumped when
  /// the flow is rerouted, so delay accounting can segment by path).
  void set_epoch(std::uint16_t epoch) { epoch_ = epoch; }
  [[nodiscard]] std::uint16_t epoch() const { return epoch_; }

  [[nodiscard]] net::FlowId flow() const { return flow_; }
  [[nodiscard]] net::NodeId src() const { return src_; }
  [[nodiscard]] net::NodeId dst() const { return dst_; }
  [[nodiscard]] std::uint64_t generated() const { return seq_; }

 protected:
  /// Creates, polices and (if conforming) emits one packet of `bits` at the
  /// current simulation time.  Returns true if the packet entered the net.
  bool generate(sim::Bits bits) {
    const sim::Time now = sim_.now();
    if (stats_ != nullptr) ++stats_->generated;
    const std::uint64_t seq = seq_++;
    if (policer_ && !policer_->try_consume(bits, now)) {
      if (stats_ != nullptr) ++stats_->source_drops;
      return false;
    }
    auto p = pool_ != nullptr
                 ? net::make_packet(*pool_, flow_, seq, src_, dst_, now, bits)
                 : net::make_packet(flow_, seq, src_, dst_, now, bits);
    p->service = service_;
    p->priority = priority_;
    p->path_epoch = epoch_;
    if (marker_) p->less_important = marker_(seq);
    if (stats_ != nullptr) ++stats_->injected;
    emit_(std::move(p));
    return true;
  }

  // Accessors for subclasses that build their own packets (the transport
  // sources reuse sequence numbers on retransmit, so generate() above does
  // not fit them).
  [[nodiscard]] net::PacketPool* pool() const { return pool_; }
  [[nodiscard]] net::FlowStats* stats() const { return stats_; }
  [[nodiscard]] net::ServiceClass service() const { return service_; }
  [[nodiscard]] std::uint8_t priority() const { return priority_; }
  void emit_packet(net::PacketPtr p) { emit_(std::move(p)); }

  sim::Simulator& sim_;

 private:
  net::FlowId flow_;
  net::NodeId src_;
  net::NodeId dst_;
  EmitFn emit_;
  net::FlowStats* stats_;
  std::optional<TokenBucket> policer_;
  net::PacketPool* pool_ = nullptr;
  net::ServiceClass service_ = net::ServiceClass::kDatagram;
  std::uint8_t priority_ = 0;
  std::uint16_t epoch_ = 0;
  ImportanceMarker marker_;
  std::uint64_t seq_ = 0;
};

}  // namespace ispn::traffic
