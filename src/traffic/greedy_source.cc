// GreedySource is header-only; this translation unit anchors the target.
#include "traffic/greedy_source.h"
