#include "traffic/token_bucket.h"

#include <algorithm>
#include <cassert>

namespace ispn::traffic {

TokenBucket::TokenBucket(TokenBucketSpec spec, sim::Time start)
    : spec_(spec), level_(spec.depth), last_(start) {
  assert(spec_.rate >= 0 && spec_.depth >= 0);
}

void TokenBucket::refill(sim::Time now) {
  if (now <= last_) return;
  level_ = std::min(spec_.depth, level_ + (now - last_) * spec_.rate);
  last_ = now;
}

bool TokenBucket::try_consume(sim::Bits bits, sim::Time now) {
  refill(now);
  // Paper semantics: conform iff n_i = level - p >= 0 (tokens may not go
  // negative).
  if (level_ + 1e-9 < bits) return false;
  level_ -= bits;
  return true;
}

sim::Bits TokenBucket::tokens(sim::Time now) const {
  if (now <= last_) return level_;
  return std::min(spec_.depth, level_ + (now - last_) * spec_.rate);
}

bool conforms(const std::vector<TracePacket>& trace,
              const TokenBucketSpec& spec) {
  double n = spec.depth;
  sim::Time prev = trace.empty() ? 0.0 : trace.front().time;
  for (const auto& pkt : trace) {
    n = std::min(spec.depth, n + (pkt.time - prev) * spec.rate) - pkt.bits;
    if (n < -1e-9) return false;
    prev = pkt.time;
  }
  return true;
}

sim::Bits min_depth(const std::vector<TracePacket>& trace, sim::Rate rate) {
  // The required depth is the max over i of the shortfall when the bucket
  // never caps: track the unconstrained token deficit.
  double deficit = 0;     // how far below "full" the bucket sits
  double worst = 0;       // max bits the bucket must have held
  sim::Time prev = trace.empty() ? 0.0 : trace.front().time;
  for (const auto& pkt : trace) {
    deficit = std::max(0.0, deficit - (pkt.time - prev) * rate);
    deficit += pkt.bits;
    worst = std::max(worst, deficit);
    prev = pkt.time;
  }
  return worst;
}

}  // namespace ispn::traffic
