// Static shortest-path routing (BFS over the link graph).
//
// The paper's experiments use fixed routes on a chain; we provide general
// BFS next-hop computation so arbitrary topologies work.  Ties break by
// ascending neighbor id, making routes deterministic.

#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/units.h"

namespace ispn::net {

/// Undirected adjacency: node -> sorted neighbor list.
using Adjacency = std::map<NodeId, std::vector<NodeId>>;

/// Next-hop table for one node: destination -> neighbor.
using NextHops = std::map<NodeId, NodeId>;

/// One link state transition at a simulated instant.  Links are
/// undirected for routing purposes: a failure takes out both directions.
struct LinkEvent {
  sim::Time time = 0;
  NodeId a = -1;
  NodeId b = -1;
  bool up = false;  ///< false = link fails at `time`, true = it recovers
};

/// A deterministic sequence of link events.  Built once (explicit specs
/// or seeded draws) before the run starts, then injected through the
/// event core, so replays are byte-identical across backends.
using FailureSchedule = std::vector<LinkEvent>;

/// Normalized undirected link key for down-link sets.
[[nodiscard]] inline std::pair<NodeId, NodeId> undirected(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

/// Copy of `adj` with every link in `down` (normalized (min,max) pairs)
/// removed from both endpoints.  Neighbor order is preserved, so routing
/// tie-breaks stay stable as links come and go.
[[nodiscard]] Adjacency filter_adjacency(
    const Adjacency& adj, const std::set<std::pair<NodeId, NodeId>>& down);

/// As above, additionally severing every link incident to a node in
/// `down_nodes` (a crashed switch): the node stays in the graph —
/// isolated — so routing tie-breaks elsewhere are untouched.
[[nodiscard]] Adjacency filter_adjacency(
    const Adjacency& adj, const std::set<std::pair<NodeId, NodeId>>& down,
    const std::set<NodeId>& down_nodes);

/// Computes next hops from `source` to every reachable destination.
[[nodiscard]] NextHops compute_next_hops(const Adjacency& adj, NodeId source);

/// Shortest path from `src` to `dst` (inclusive); empty if unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path(const Adjacency& adj,
                                                NodeId src, NodeId dst);

}  // namespace ispn::net
