// Static shortest-path routing (BFS over the link graph).
//
// The paper's experiments use fixed routes on a chain; we provide general
// BFS next-hop computation so arbitrary topologies work.  Ties break by
// ascending neighbor id, making routes deterministic.

#pragma once

#include <map>
#include <vector>

#include "net/packet.h"

namespace ispn::net {

/// Undirected adjacency: node -> sorted neighbor list.
using Adjacency = std::map<NodeId, std::vector<NodeId>>;

/// Next-hop table for one node: destination -> neighbor.
using NextHops = std::map<NodeId, NodeId>;

/// Computes next hops from `source` to every reachable destination.
[[nodiscard]] NextHops compute_next_hops(const Adjacency& adj, NodeId source);

/// Shortest path from `src` to `dst` (inclusive); empty if unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path(const Adjacency& adj,
                                                NodeId src, NodeId dst);

}  // namespace ispn::net
