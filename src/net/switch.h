// A packet switch: routing table + one output port per neighbor.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/node.h"
#include "net/port.h"
#include "util/direct_map_cache.h"

namespace ispn::net {

class Switch final : public Node {
 public:
  Switch(NodeId id, std::string name) : Node(id, std::move(name)) {}

  /// Installs the output port towards `neighbor` (owned by the switch).
  Port& attach_port(NodeId neighbor, std::unique_ptr<Port> port);

  /// Routes packets destined to `dst` via `next_hop` (must have a port).
  void set_route(NodeId dst, NodeId next_hop);

  /// Empties the routing table (a topology change is about to install a
  /// fresh one).  Ports and their queues are untouched.
  void clear_routes() {
    routes_.clear();
    route_cache_.invalidate();
  }

  /// Observer for packets arriving with no route to their destination
  /// (network partition).  The packet is counted and dropped, not
  /// asserted on — under link failures a missing route is a legitimate
  /// runtime condition, not a configuration error.
  using NoRouteHook = std::function<void(const Packet&)>;
  void set_no_route_hook(NoRouteHook hook) { no_route_ = std::move(hook); }

  /// Packets dropped for lack of a route.
  [[nodiscard]] std::uint64_t no_route_drops() const {
    return no_route_drops_;
  }

  /// Forwards the packet along its route, or counts and drops it when no
  /// route exists (possible whenever links can fail).  The dst -> port
  /// resolution goes through a direct-mapped destination-locality cache
  /// (DEC-TR-592) in front of the routing table, invalidated whenever the
  /// table changes.
  void receive(PacketPtr p) override;

  /// Chases the cached route one inline hop toward the destination: if
  /// the cached output port delivers without queueing (an infinitely
  /// fast switch-to-host link), the peer's delivery state is warmed too.
  /// The probe is counter-free — the route cache's hit/miss streams are
  /// exported and asserted deterministic, and a speculative hint must
  /// not perturb them.
  void prefetch_delivery(const Packet& p) const override {
    if (Port* const* cached = route_cache_.peek(p.dst)) {
      const Port& out = **cached;
      if (out.rate() <= 0 && out.link_up()) out.peer().prefetch_delivery(p);
    }
  }

  [[nodiscard]] Port* port_to(NodeId neighbor);
  [[nodiscard]] const std::map<NodeId, NodeId>& routes() const {
    return routes_;
  }
  [[nodiscard]] const std::map<NodeId, std::unique_ptr<Port>>& ports() const {
    return ports_;
  }

  /// Destination-locality cache counters (exported into ScenarioReport).
  [[nodiscard]] std::uint64_t route_cache_hits() const {
    return route_cache_.hits();
  }
  [[nodiscard]] std::uint64_t route_cache_misses() const {
    return route_cache_.misses();
  }

 private:
  std::map<NodeId, std::unique_ptr<Port>> ports_;  // keyed by neighbor
  std::map<NodeId, NodeId> routes_;                // dst -> next hop
  // Port pointers are stable (ports_ owns them for the switch's lifetime),
  // so caching dst -> Port* skips both map walks on a hit.
  util::DirectMapCache<NodeId, Port*> route_cache_;
  NoRouteHook no_route_;
  std::uint64_t no_route_drops_ = 0;
};

}  // namespace ispn::net
