// A packet switch: routing table + one output port per neighbor.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/node.h"
#include "net/port.h"

namespace ispn::net {

class Switch final : public Node {
 public:
  Switch(NodeId id, std::string name) : Node(id, std::move(name)) {}

  /// Installs the output port towards `neighbor` (owned by the switch).
  Port& attach_port(NodeId neighbor, std::unique_ptr<Port> port);

  /// Routes packets destined to `dst` via `next_hop` (must have a port).
  void set_route(NodeId dst, NodeId next_hop);

  /// Empties the routing table (a topology change is about to install a
  /// fresh one).  Ports and their queues are untouched.
  void clear_routes() { routes_.clear(); }

  /// Observer for packets arriving with no route to their destination
  /// (network partition).  The packet is counted and dropped, not
  /// asserted on — under link failures a missing route is a legitimate
  /// runtime condition, not a configuration error.
  using NoRouteHook = std::function<void(const Packet&)>;
  void set_no_route_hook(NoRouteHook hook) { no_route_ = std::move(hook); }

  /// Packets dropped for lack of a route.
  [[nodiscard]] std::uint64_t no_route_drops() const {
    return no_route_drops_;
  }

  /// Forwards the packet along its route, or counts and drops it when no
  /// route exists (possible whenever links can fail).
  void receive(PacketPtr p) override;

  [[nodiscard]] Port* port_to(NodeId neighbor);
  [[nodiscard]] const std::map<NodeId, NodeId>& routes() const {
    return routes_;
  }
  [[nodiscard]] const std::map<NodeId, std::unique_ptr<Port>>& ports() const {
    return ports_;
  }

 private:
  std::map<NodeId, std::unique_ptr<Port>> ports_;  // keyed by neighbor
  std::map<NodeId, NodeId> routes_;                // dst -> next hop
  NoRouteHook no_route_;
  std::uint64_t no_route_drops_ = 0;
};

}  // namespace ispn::net
