// A packet switch: routing table + one output port per neighbor.

#pragma once

#include <map>
#include <memory>

#include "net/node.h"
#include "net/port.h"

namespace ispn::net {

class Switch final : public Node {
 public:
  Switch(NodeId id, std::string name) : Node(id, std::move(name)) {}

  /// Installs the output port towards `neighbor` (owned by the switch).
  Port& attach_port(NodeId neighbor, std::unique_ptr<Port> port);

  /// Routes packets destined to `dst` via `next_hop` (must have a port).
  void set_route(NodeId dst, NodeId next_hop);

  /// Forwards the packet along its route.  Dropping on a missing route is a
  /// configuration error and asserts.
  void receive(PacketPtr p) override;

  [[nodiscard]] Port* port_to(NodeId neighbor);
  [[nodiscard]] const std::map<NodeId, NodeId>& routes() const {
    return routes_;
  }
  [[nodiscard]] const std::map<NodeId, std::unique_ptr<Port>>& ports() const {
    return ports_;
  }

 private:
  std::map<NodeId, std::unique_ptr<Port>> ports_;  // keyed by neighbor
  std::map<NodeId, NodeId> routes_;                // dst -> next hop
};

}  // namespace ispn::net
