// Cross-domain packet handoff: one mailbox per directed inter-domain link.
//
// The transmitting port's domain is the single producer; the shard
// coordinator, draining at a lookahead barrier while every domain is
// quiescent, is the single consumer.  A push records the arrival instant
// (transmit-complete time plus the link's propagation latency — the same
// latency the coordinator uses as its lookahead window, which is exactly
// why an arrival can never land inside the window that produced it); a
// drain schedules each entry into the destination domain's simulator in
// push order.
//
// Determinism: within one mailbox, ring order IS push order (SPSC FIFO),
// and the producer's event order is deterministic.  Across mailboxes,
// the coordinator drains in mailbox-creation order — a function of the
// topology build order, never of thread scheduling — so equal-time
// arrivals at one domain always get the same event-queue sequence
// numbers, whatever the worker count.
//
// Allocation: the ring is sized at build time from the link's bandwidth-
// delay product (plus slack); a burst that overflows it spills to a
// plain vector on the producer side.  That vector is produce-only during
// a window and read+cleared only at barriers, so despite being unguarded
// it is never accessed concurrently (the engine's barrier mutex provides
// the happens-before).  Steady state stays in the ring: zero allocation.

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/node.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/spsc_ring.h"

namespace ispn::net {

class LinkMailbox {
 public:
  /// `latency` is the link's propagation delay (the lookahead the shard
  /// engine synchronizes on); `dst_sim`/`peer` are the receiving domain's
  /// clock and the node the packet is delivered to.
  LinkMailbox(sim::Duration latency, sim::Simulator& dst_sim, Node& peer,
              std::size_t ring_capacity)
      : latency_(latency), dst_sim_(&dst_sim), peer_(&peer),
        ring_(ring_capacity) {}

  /// Undelivered packets (teardown mid-run) go back to their pools so the
  /// pools' outstanding-count accounting stays balanced.
  ~LinkMailbox() {
    Entry e;
    while (ring_.try_pop(e)) PacketPtr(e.packet, PacketDeleter{e.pool});
    for (const Entry& o : overflow_) PacketPtr(o.packet, PacketDeleter{o.pool});
  }

  LinkMailbox(const LinkMailbox&) = delete;
  LinkMailbox& operator=(const LinkMailbox&) = delete;

  /// Producer side (transmitting domain's thread): queues the packet for
  /// arrival at `now + latency`.  Never blocks, never drops.
  void push(PacketPtr p, sim::Time now) {
    Entry e;
    e.arrival = now + latency_;
    e.pool = p.get_deleter().pool;
    e.packet = p.release();
    in_transit_.fetch_add(1, std::memory_order_relaxed);
    if (!ring_.try_push(e)) {
      overflow_.push_back(e);
      ++spills_;
    }
    // Ring first, overflow second: the consumer only runs at barriers, so
    // once a window spills, ALL later pushes of that window spill too —
    // draining the ring before the vector preserves push order.
  }

  /// Consumer side (barrier only): schedules every pending arrival into
  /// the destination domain.  Returns the number of packets moved.
  std::size_t drain() {
    std::size_t n = 0;
    Entry e;
    while (ring_.try_pop(e)) {
      deliver(e);
      ++n;
    }
    if (!overflow_.empty()) {
      for (const Entry& o : overflow_) deliver(o);
      n += overflow_.size();
      overflow_.clear();
    }
    return n;
  }

  /// Barrier-only: true when no packets are waiting.
  [[nodiscard]] bool empty() const {
    return ring_.empty() && overflow_.empty();
  }

  [[nodiscard]] sim::Duration latency() const { return latency_; }
  [[nodiscard]] std::size_t ring_capacity() const { return ring_.capacity(); }

  /// Packets pushed but not yet delivered to the destination node: in the
  /// ring/overflow, or drained but still waiting on their arrival event.
  /// The invariant monitor's mid-run conservation audit needs this term —
  /// a packet "on the wire" between domains is in nobody's queue.
  [[nodiscard]] std::uint64_t in_transit() const {
    return in_transit_.load(std::memory_order_relaxed);
  }

  /// Pushes that overflowed the BDP-sized ring onto the spill vector
  /// (lifetime total; the burst-overflow regression test pins this > 0).
  [[nodiscard]] std::uint64_t spills() const { return spills_; }

 private:
  struct Entry {
    sim::Time arrival = 0;
    Packet* packet = nullptr;
    PacketPool* pool = nullptr;
  };

  void deliver(const Entry& e) {
    // 32-byte capture: stays inside InlineAction's inline storage (48).
    // The in-transit decrement rides the arrival event itself, so the
    // count stays exact through the drained-but-not-yet-arrived window.
    Node* peer = peer_;
    Packet* pkt = e.packet;
    PacketPool* pool = e.pool;
    std::atomic<std::uint64_t>* transit = &in_transit_;
    dst_sim_->at(e.arrival, [peer, pkt, pool, transit] {
      transit->fetch_sub(1, std::memory_order_relaxed);
      peer->receive(PacketPtr(pkt, PacketDeleter{pool}));
    });
  }

  sim::Duration latency_;
  sim::Simulator* dst_sim_;
  Node* peer_;
  util::SpscRing<Entry> ring_;
  std::vector<Entry> overflow_;
  std::atomic<std::uint64_t> in_transit_{0};
  std::uint64_t spills_ = 0;  ///< producer-written, read at barriers only
};

}  // namespace ispn::net
