#include "net/host.h"

#include <cassert>
#include <utility>

namespace ispn::net {

void Host::inject(PacketPtr p) {
  assert(uplink_ != nullptr && "host not connected");
  uplink_->send(std::move(p));
}

void Host::register_sink(FlowId flow, FlowSink* sink) {
  assert(sink != nullptr);
  auto [it, inserted] = sinks_.try_emplace(flow, sink);
  (void)it;
  assert(inserted && "flow already has a sink on this host");
}

void Host::receive(PacketPtr p) {
  auto it = sinks_.find(p->flow);
  if (it == sinks_.end()) {
    ++unclaimed_;
    return;
  }
  it->second->on_packet(std::move(p), sim_->now());
}

}  // namespace ispn::net
