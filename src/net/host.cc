#include "net/host.h"

#include <cassert>
#include <utility>

namespace ispn::net {

void Host::inject(PacketPtr p) {
  assert(uplink_ != nullptr && "host not connected");
  uplink_->send(std::move(p));
}

std::uint32_t Host::register_sink(FlowId flow, FlowSink* sink) {
  assert(sink != nullptr);
  const std::uint32_t slot = sink_slots_.acquire(flow);
  if (slot >= sinks_.size()) sinks_.resize(slot + 1);
  assert(sinks_[slot].sink == nullptr &&
         "flow already has a sink on this host");
  sinks_[slot] = SinkEntry{flow, sink};
  return slot;
}

void Host::receive(PacketPtr p) {
  // Label fast path: a slot stamped at flow setup, validated against the
  // flow id so a stale or foreign label can never misdeliver.
  const std::uint32_t label = p->sink_slot;
  if (label < sinks_.size() && sinks_[label].flow == p->flow) {
    ++label_hits_;
    FlowSink* sink = sinks_[label].sink;
    sink->on_packet(std::move(p), sim_->now());
    return;
  }
  FlowSink* sink;
  if (FlowSink** cached = cache_.lookup(p->flow); cached != nullptr) {
    sink = *cached;
  } else {
    const std::uint32_t slot = sink_slots_.find(p->flow);
    if (slot == util::SlotMap::kNoSlot) {
      ++unclaimed_;
      return;
    }
    sink = sinks_[slot].sink;
    cache_.insert(p->flow, sink);
  }
  sink->on_packet(std::move(p), sim_->now());
}

}  // namespace ispn::net
