// The packet and its CSZ header fields.
//
// The paper's mechanism needs exactly one nonstandard header field: the
// FIFO+ jitter offset (§6), the accumulated difference between this packet's
// per-hop queueing delays and its class's average delay at each traversed
// switch.  We also carry measurement fields (creation time, accumulated
// queueing delay, hop count) that a real implementation would keep in
// per-packet switch state or derive from timestamps; they exist here so the
// simulation can report the paper's statistics exactly.

#pragma once

#include <cstdint>
#include <memory>

#include "sim/units.h"

namespace ispn::net {

/// Network-wide flow identifier.
using FlowId = std::int32_t;

/// Node (host or switch) identifier, assigned by Network.
using NodeId = std::int32_t;

inline constexpr FlowId kNoFlow = -1;
inline constexpr NodeId kNoNode = -1;

/// Sentinel for Packet::sink_slot: no delivery hint carried.
inline constexpr std::uint32_t kNoSinkSlot = ~std::uint32_t{0};

/// The paper's three service commitment levels (§3).
enum class ServiceClass : std::uint8_t {
  kGuaranteed = 0,  ///< worst-case a-priori bounds, WFQ-isolated
  kPredicted = 1,   ///< measurement-based bounds, priority+FIFO+ shared
  kDatagram = 2,    ///< best effort, lowest priority
};

/// Returns a short human-readable label ("G", "P", "D").
constexpr const char* to_label(ServiceClass c) {
  switch (c) {
    case ServiceClass::kGuaranteed: return "G";
    case ServiceClass::kPredicted: return "P";
    case ServiceClass::kDatagram: return "D";
  }
  return "?";
}

/// One packet.  Plain aggregate (C.2): fields vary independently; the
/// network components that touch a field document their protocol.
struct Packet {
  // --- Addressing / identity -------------------------------------------
  FlowId flow = kNoFlow;
  std::uint64_t seq = 0;     ///< per-flow sequence number
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  sim::Bits size_bits = sim::paper::kPacketBits;
  /// VC-style delivery label: the flow's sink slot at the destination
  /// host, stamped by sources that learned it at flow setup.  Host
  /// delivery validates the slot against `flow` and dispatches with one
  /// indexed access instead of a hash probe; kNoSinkSlot or a stale slot
  /// falls back to the cached table lookup.
  std::uint32_t sink_slot = kNoSinkSlot;

  // --- CSZ service fields ----------------------------------------------
  ServiceClass service = ServiceClass::kDatagram;
  /// Priority level within the predicted/datagram pseudo-flow; 0 is the
  /// highest predicted class.  Schedulers may override via their own
  /// per-flow maps (the paper allows per-switch levels).
  std::uint8_t priority = 0;
  /// FIFO+ jitter offset (seconds): cumulative (own delay - class average).
  /// Positive means the packet has been unlucky so far and should be
  /// scheduled as if it had arrived earlier.
  double jitter_offset = 0;
  /// §10 drop preference: sources may tag packets "less important" so that
  /// overload sheds them first (e.g. video enhancement layers).
  bool less_important = false;

  // --- Measurement / bookkeeping ---------------------------------------
  sim::Time created_at = 0;    ///< generation time at the source
  sim::Time enqueued_at = 0;   ///< arrival time at the current output port
  double queueing_delay = 0;   ///< accumulated waiting time across hops (s)
  std::uint16_t hops = 0;      ///< finite-rate ports traversed
  /// Which routing of its flow this packet was sent under.  A reroute or
  /// degrade bumps the source's epoch, so delay accounting can separate
  /// samples that crossed the old path from samples on the new one.
  std::uint16_t path_epoch = 0;

  // --- Transport (TCP datagram load) -----------------------------------
  bool is_ack = false;
  std::uint64_t ack_seq = 0;   ///< cumulative ACK: next expected seq
  /// DEC-TR-506 binary feedback: set by a scheduler whose average queue
  /// length at this packet's arrival exceeded the mark threshold.  Sticky
  /// along the path (any congested hop marks; no hop clears).
  bool cong_mark = false;
  /// The sink's echo of cong_mark, carried back to the source on the ACK.
  bool cong_echo = false;
};

class PacketPool;

/// Returns fired packets to their pool (or plain-deletes pool-less ones,
/// e.g. test fixtures).  Defined in net/packet_pool.h.
struct PacketDeleter {
  PacketPool* pool = nullptr;
  inline void operator()(Packet* p) const noexcept;
};

/// Packets are owned uniquely and handed off along the path (I.11).  The
/// deleter recycles the storage through the owning PacketPool, so ownership
/// semantics at the ~30 hand-off sites are unchanged while steady-state
/// allocation is zero.
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

}  // namespace ispn::net

// Completes PacketDeleter and provides make_packet() on top of the pool.
#include "net/packet_pool.h"
