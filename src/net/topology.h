// Topology builders, including the paper's Figure 1 chain.
//
//   Host-1   Host-2   Host-3   Host-4   Host-5
//     |        |        |        |        |          (infinitely fast)
//    S-1 ---- S-2 ---- S-3 ---- S-4 ---- S-5         (1 Mbit/s links)
//
// Hosts attach by infinitely fast links; queueing happens only at the
// inter-switch links, each carrying 10 flows in the paper's Tables 2/3.

#pragma once

#include <string>
#include <vector>

#include "net/network.h"

namespace ispn::net {

/// Ids of the nodes created by build_chain().
struct ChainTopology {
  std::vector<NodeId> switches;  ///< S-1 .. S-n, left to right
  std::vector<NodeId> hosts;     ///< Host-i attached to S-i
};

/// Builds an n-switch chain with one host per switch (Figure 1 for n = 5).
/// Inter-switch links run at `inter_switch_rate` with `make_scheduler`
/// queueing per direction; host links are infinitely fast.
ChainTopology build_chain(Network& net, int num_switches,
                          sim::Rate inter_switch_rate,
                          const SchedulerFactory& make_scheduler);

/// Renders the chain as ASCII art (used by bench_table2 to echo Figure 1).
[[nodiscard]] std::string chain_ascii(const ChainTopology& topo);

/// Builds a single-link topology: two hosts joined through two switches by
/// one bottleneck link (the Table 1 configuration collapses to this).
struct DumbbellTopology {
  NodeId left_host;
  NodeId right_host;
  NodeId left_switch;
  NodeId right_switch;
};
DumbbellTopology build_dumbbell(Network& net, sim::Rate bottleneck_rate,
                                const SchedulerFactory& make_scheduler);

/// Fan-in: several edge switches feed one merge switch whose single
/// output port is the bottleneck — the first scenario beyond the paper's
/// Figure 1 chain, exercising a queueing point where traffic from
/// multiple upstream switches converges.
///
///   Host-1 ── S-1 ─┐ feed_rate
///   Host-2 ── S-2 ─┼──────── S-M ──bottleneck_rate── S-out ── Host-out
///   ...            │
///   Host-n ── S-n ─┘
struct FanInTopology {
  std::vector<NodeId> src_hosts;      ///< Host-1 .. Host-n
  std::vector<NodeId> edge_switches;  ///< S-1 .. S-n
  NodeId merge_switch;  ///< S-M; its port towards sink_switch is the bottleneck
  NodeId sink_switch;   ///< S-out
  NodeId sink_host;     ///< Host-out
};
FanInTopology build_fan_in(Network& net, int num_sources, sim::Rate feed_rate,
                           sim::Rate bottleneck_rate,
                           const SchedulerFactory& make_scheduler);

/// Asymmetric-rate fan-in: one feed rate per source (feed_rates[i] is the
/// S-i -> S-M link; <= 0 means infinitely fast).  A fast feed beside slow
/// ones makes the merge port the paper's "parking lot" — cross traffic
/// entering at different rates and contending for one bottleneck — which
/// the soak test drives with millions of packets.
FanInTopology build_fan_in(Network& net,
                           const std::vector<sim::Rate>& feed_rates,
                           sim::Rate bottleneck_rate,
                           const SchedulerFactory& make_scheduler);

}  // namespace ispn::net
