// Topology builders, including the paper's Figure 1 chain.
//
//   Host-1   Host-2   Host-3   Host-4   Host-5
//     |        |        |        |        |          (infinitely fast)
//    S-1 ---- S-2 ---- S-3 ---- S-4 ---- S-5         (1 Mbit/s links)
//
// Hosts attach by infinitely fast links; queueing happens only at the
// inter-switch links, each carrying 10 flows in the paper's Tables 2/3.
//
// Every builder has two flavours: one taking the plain SchedulerFactory
// and one taking the DirectionalSchedulerFactory, for callers that key
// per-link state (measurement, admission) by direction — the scenario
// fabric generator composes the directional ones.

#pragma once

#include <string>
#include <vector>

#include "net/network.h"

namespace ispn::net {

/// Ids of the nodes created by build_chain().
struct ChainTopology {
  std::vector<NodeId> switches;  ///< S-1 .. S-n, left to right
  std::vector<NodeId> hosts;     ///< Host-i attached to S-i
};

/// Builds an n-switch chain with one host per switch (Figure 1 for n = 5).
/// Inter-switch links run at `inter_switch_rate` with `make_scheduler`
/// queueing per direction; host links are infinitely fast.
ChainTopology build_chain(Network& net, int num_switches,
                          sim::Rate inter_switch_rate,
                          const SchedulerFactory& make_scheduler);
ChainTopology build_chain(Network& net, int num_switches,
                          sim::Rate inter_switch_rate,
                          const DirectionalSchedulerFactory& make_scheduler);
ChainTopology build_chain(Network& net, int num_switches,
                          sim::Rate inter_switch_rate,
                          const LinkSchedulerFactory& make_scheduler);

/// Renders the chain as ASCII art (used by bench_table2 to echo Figure 1).
[[nodiscard]] std::string chain_ascii(const ChainTopology& topo);

/// Builds a single-link topology: two hosts joined through two switches by
/// one bottleneck link (the Table 1 configuration collapses to this).
struct DumbbellTopology {
  NodeId left_host;
  NodeId right_host;
  NodeId left_switch;
  NodeId right_switch;
};
DumbbellTopology build_dumbbell(Network& net, sim::Rate bottleneck_rate,
                                const SchedulerFactory& make_scheduler);
DumbbellTopology build_dumbbell(Network& net, sim::Rate bottleneck_rate,
                                const DirectionalSchedulerFactory& make_scheduler);

/// Fan-in: several edge switches feed one merge switch whose single
/// output port is the bottleneck — the first scenario beyond the paper's
/// Figure 1 chain, exercising a queueing point where traffic from
/// multiple upstream switches converges.
///
///   Host-1 ── S-1 ─┐ feed_rate
///   Host-2 ── S-2 ─┼──────── S-M ──bottleneck_rate── S-out ── Host-out
///   ...            │
///   Host-n ── S-n ─┘
struct FanInTopology {
  std::vector<NodeId> src_hosts;      ///< Host-1 .. Host-n
  std::vector<NodeId> edge_switches;  ///< S-1 .. S-n
  NodeId merge_switch;  ///< S-M; its port towards sink_switch is the bottleneck
  NodeId sink_switch;   ///< S-out
  NodeId sink_host;     ///< Host-out
};
FanInTopology build_fan_in(Network& net, int num_sources, sim::Rate feed_rate,
                           sim::Rate bottleneck_rate,
                           const SchedulerFactory& make_scheduler);

/// Asymmetric-rate fan-in: one feed rate per source (feed_rates[i] is the
/// S-i -> S-M link; <= 0 means infinitely fast).  A fast feed beside slow
/// ones makes the merge port the paper's "parking lot" — cross traffic
/// entering at different rates and contending for one bottleneck — which
/// the soak test drives with millions of packets.
FanInTopology build_fan_in(Network& net,
                           const std::vector<sim::Rate>& feed_rates,
                           sim::Rate bottleneck_rate,
                           const SchedulerFactory& make_scheduler);
FanInTopology build_fan_in(Network& net,
                           const std::vector<sim::Rate>& feed_rates,
                           sim::Rate bottleneck_rate,
                           const DirectionalSchedulerFactory& make_scheduler);
FanInTopology build_fan_in(Network& net,
                           const std::vector<sim::Rate>& feed_rates,
                           sim::Rate bottleneck_rate,
                           const LinkSchedulerFactory& make_scheduler);

/// Complete `width`-ary aggregation tree of `depth` switch levels: the
/// root (level 0) carries the sink host, every leaf switch (level
/// depth-1) carries a source host, and the links between level d and
/// level d+1 run at level_rates[d].  Traffic from the leaves converges
/// level by level towards the root — a fan-in fabric whose contention
/// deepens with `depth` (reversed flows make it a fan-out tree; the
/// topology is symmetric).
///
///   depth=3, width=2:   Host-root -- S-0            (level 0)
///                                   /    |
///                                S-1     S-2        (level 1)
///                               /  |     |  |
///                             S-3 S-4   S-5 S-6     (level 2, leaves)
///                              |   |     |   |
///                            Host Host Host Host
struct FanTreeTopology {
  int depth = 0;  ///< number of switch levels
  int width = 0;  ///< children per switch
  std::vector<std::vector<NodeId>> levels;  ///< levels[d] = switches at depth d
  NodeId root_switch = kNoNode;
  NodeId root_host = kNoNode;              ///< sink side, attached to the root
  std::vector<NodeId> leaf_switches;       ///< == levels[depth-1]
  std::vector<NodeId> leaf_hosts;          ///< one per leaf switch
};
FanTreeTopology build_fan_tree(Network& net, int depth, int width,
                               const std::vector<sim::Rate>& level_rates,
                               const LinkSchedulerFactory& make_scheduler);

/// Multi-bottleneck parking lot: a chain of switches where EVERY switch
/// carries an entry/exit host and every hop may run at its own rate, so
/// cross traffic enters and leaves at each hop while long flows cross
/// several consecutive bottlenecks (hop_rates[i] is the S-i -> S-i+1
/// link).  This is the classic multi-bottleneck fairness topology the
/// ROADMAP's scale-scenarios item calls for.
struct ParkingLotTopology {
  std::vector<NodeId> switches;  ///< S-1 .. S-(n+1) for n hops
  std::vector<NodeId> hosts;     ///< entry/exit host per switch
  [[nodiscard]] int hops() const {
    return static_cast<int>(switches.size()) - 1;
  }
};
ParkingLotTopology build_parking_lot(Network& net,
                                     const std::vector<sim::Rate>& hop_rates,
                                     const LinkSchedulerFactory& make_scheduler);

/// rows x cols grid of switches, each with one host, connected to the
/// right and downward neighbor — the smallest fabric where a single link
/// failure leaves an alternate path for every pair, which is what the
/// failure scenarios need.  switches[r*cols + c] is the switch at (r, c).
///
///   rows=2, cols=3:    S00 ── S01 ── S02
///                       |      |      |
///                      S10 ── S11 ── S12      (every switch has a host)
struct MeshTopology {
  int rows = 0;
  int cols = 0;
  std::vector<NodeId> switches;  ///< row-major, rows*cols entries
  std::vector<NodeId> hosts;     ///< hosts[i] attached to switches[i]
  [[nodiscard]] NodeId at(int r, int c) const {
    return switches[static_cast<std::size_t>(r * cols + c)];
  }
};
MeshTopology build_mesh(Network& net, int rows, int cols, sim::Rate link_rate,
                        const LinkSchedulerFactory& make_scheduler);

/// n switches in a cycle, one host each: exactly two disjoint paths
/// between every pair, so any single failure reroutes the long way round.
struct RingTopology {
  std::vector<NodeId> switches;
  std::vector<NodeId> hosts;
};
RingTopology build_ring(Network& net, int num_switches, sim::Rate link_rate,
                        const LinkSchedulerFactory& make_scheduler);

/// Two-level folded Clos: every leaf connects to every spine, hosts hang
/// off the leaves.  Leaf-to-leaf traffic has `spines` equal-length paths;
/// BFS tie-breaking pins each pair to one, and a spine-link failure moves
/// it deterministically to the next spine.
struct ClosTopology {
  std::vector<NodeId> spines;
  std::vector<NodeId> leaves;
  std::vector<NodeId> hosts;  ///< hosts[i] attached to leaves[i]
};
ClosTopology build_clos(Network& net, int spines, int leaves,
                        sim::Rate link_rate,
                        const LinkSchedulerFactory& make_scheduler);

}  // namespace ispn::net
