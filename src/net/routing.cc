#include "net/routing.h"

#include <algorithm>
#include <deque>

namespace ispn::net {

namespace {

/// BFS parents from `source`; parent[source] = source.
std::map<NodeId, NodeId> bfs_parents(const Adjacency& adj, NodeId source) {
  std::map<NodeId, NodeId> parent;
  parent[source] = source;
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (NodeId v : it->second) {
      if (parent.contains(v)) continue;
      parent[v] = u;
      frontier.push_back(v);
    }
  }
  return parent;
}

}  // namespace

Adjacency filter_adjacency(const Adjacency& adj,
                           const std::set<std::pair<NodeId, NodeId>>& down) {
  if (down.empty()) return adj;
  Adjacency out;
  for (const auto& [node, neighbors] : adj) {
    auto& kept = out[node];  // keep the node even if fully isolated
    kept.reserve(neighbors.size());
    for (NodeId v : neighbors) {
      if (!down.contains(undirected(node, v))) kept.push_back(v);
    }
  }
  return out;
}

Adjacency filter_adjacency(const Adjacency& adj,
                           const std::set<std::pair<NodeId, NodeId>>& down,
                           const std::set<NodeId>& down_nodes) {
  if (down_nodes.empty()) return filter_adjacency(adj, down);
  Adjacency out;
  for (const auto& [node, neighbors] : adj) {
    auto& kept = out[node];  // keep the node even if fully isolated
    if (down_nodes.contains(node)) continue;  // crashed: no usable links
    kept.reserve(neighbors.size());
    for (NodeId v : neighbors) {
      if (down_nodes.contains(v)) continue;
      if (!down.contains(undirected(node, v))) kept.push_back(v);
    }
  }
  return out;
}

NextHops compute_next_hops(const Adjacency& adj, NodeId source) {
  const auto parent = bfs_parents(adj, source);
  NextHops hops;
  for (const auto& [dst, _] : parent) {
    if (dst == source) continue;
    // Walk back from dst until the node whose parent is the source.
    NodeId cur = dst;
    while (parent.at(cur) != source) cur = parent.at(cur);
    hops[dst] = cur;
  }
  return hops;
}

std::vector<NodeId> shortest_path(const Adjacency& adj, NodeId src,
                                  NodeId dst) {
  const auto parent = bfs_parents(adj, src);
  if (!parent.contains(dst)) return {};
  std::vector<NodeId> path;
  for (NodeId cur = dst; cur != src; cur = parent.at(cur)) path.push_back(cur);
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace ispn::net
