#include "net/port.h"

#include <cassert>
#include <utility>

namespace ispn::net {

Port::Port(sim::Simulator& sim, sim::Rate rate,
           std::unique_ptr<sched::Scheduler> scheduler, Node* peer)
    : sim_(sim), rate_(rate), scheduler_(std::move(scheduler)), peer_(peer) {
  assert(peer_ != nullptr);
  assert(rate_ <= 0 || scheduler_ != nullptr);
  if (rate_ > 0) {
    // Persistent timers: closures constructed once here, re-armed per
    // packet.  Infinitely fast links never transmit-complete or retry.
    complete_timer_ = sim::Timer(sim_, [this] { complete(); });
    retry_timer_ = sim::Timer(sim_, [this] { try_start(); });
  }
  if (scheduler_ != nullptr) {
    // Installed once; victims are destroyed (returning to their pool) when
    // this sink returns.
    scheduler_->set_drop_sink([this](PacketPtr victim, sim::Time now) {
      ++drops_;
      for (const auto& hook : on_drop_) hook(*victim, now);
    });
  }
}

void Port::send(PacketPtr p) {
  assert(p != nullptr);
  if (!link_up_) {
    // The link is down: the packet is lost the instant it is offered.
    // Stamp it anyway so link-drop observers never see a default arrival
    // time.
    p->enqueued_at = sim_.now();
    link_drop(std::move(p), sim_.now());
    return;
  }
  if (rate_ <= 0) {
    // Infinitely fast link: no queueing, no transmission delay.  Stamp the
    // arrival anyway so downstream observers (tracers, sinks on all-fast
    // routes) never see a stale or default arrival time.
    p->enqueued_at = sim_.now();
    peer_->receive(std::move(p));
    return;
  }
  p->enqueued_at = sim_.now();
  scheduler_->enqueue(std::move(p), sim_.now());
  try_start();
}

void Port::try_start() {
  // Infinitely fast ports deliver inline in send() and own no scheduler;
  // a state-change poll (link or node recovery) has nothing to restart.
  if (rate_ <= 0) return;
  if (!link_up_ || busy_ || scheduler_->empty()) return;
  // Non-work-conserving disciplines may hold packets: wait until the
  // scheduler's next eligibility instant, re-arming if it moves earlier.
  const sim::Time eligible = scheduler_->next_eligible(sim_.now());
  if (eligible > sim_.now()) {
    // Re-arm only when eligibility moved earlier; arming supersedes the
    // pending arm in place (no cancel, no slot churn).
    if (!retry_timer_.pending() || eligible < retry_timer_.expiry()) {
      retry_timer_.arm_at(eligible);
    }
    return;
  }
  in_flight_ = scheduler_->dequeue(sim_.now());
  // A scheduler may discard stale packets at dequeue time (§10) and come
  // up empty even though it reported a backlog a moment ago.
  if (in_flight_ == nullptr) return;
  // Waiting time at this hop: from arrival to start of transmission.
  in_flight_->queueing_delay += sim_.now() - in_flight_->enqueued_at;
  ++in_flight_->hops;
  busy_ = true;
  // The packet is now committed to arrive at the peer one transmit-time
  // out: warm the delivery-side state while it is "on the wire" (inline
  // deliveries via handoff mailboxes cross domains; skip those).
  if (handoff_ == nullptr) peer_->prefetch_delivery(*in_flight_);
  const sim::Duration tx_time = in_flight_->size_bits / rate_;
  complete_timer_.arm_after(tx_time);
}

void Port::complete() {
  assert(busy_ && in_flight_ != nullptr);
  PacketPtr p = std::move(in_flight_);
  busy_ = false;
  ++transmitted_;
  bits_sent_ += p->size_bits;
  for (const auto& hook : on_tx_) hook(*p, sim_.now());
  // Injected transient loss: the packet consumed the wire (tx accounting
  // above stands — utilization and measurement saw it) but is destroyed
  // before delivery.  Drawn after tx, before handoff, so the draw count
  // per port is exactly its transmissions while the episode is active.
  if (loss_prob_ > 0 && loss_rng_.bernoulli(loss_prob_)) {
    ++fault_drops_;
    for (const auto& hook : on_fault_drop_) hook(*p, sim_.now());
    p.reset();  // pooled storage returns to its PacketPool
    try_start();
    return;
  }
  if (handoff_ != nullptr) {
    handoff_->push(std::move(p), sim_.now());
  } else {
    peer_->receive(std::move(p));
  }
  try_start();
}

void Port::set_rate(sim::Rate rate) {
  assert(rate_ > 0 && "cannot re-rate an infinitely fast link");
  assert(rate > 0 && "brown-out to zero is a link failure, not a re-rate");
  rate_ = rate;
  // The in-flight packet's completion stays armed at the instant committed
  // when it was dequeued; only future dequeues see the new rate.
}

void Port::set_loss(double prob, std::uint64_t seed, std::uint64_t stream) {
  loss_prob_ = prob > 0 ? prob : 0;
  if (loss_prob_ > 0) loss_rng_ = sim::Rng(seed, stream);
}

void Port::link_drop(PacketPtr p, sim::Time now) {
  ++link_drops_;
  for (const auto& hook : on_link_drop_) hook(*p, now);
  // `p` destroyed here: pooled storage returns to its PacketPool.
}

void Port::set_link_up(bool up, sim::Time now) {
  if (up == link_up_) return;
  link_up_ = up;
  if (up) {
    // The queue was flushed at failure time and send() refused everything
    // since, so the queue is empty — but poll anyway in case a discipline
    // holds state that became eligible.
    try_start();
    return;
  }
  // Failure: cancel the pending events, lose the packet on the wire, and
  // drain the queue into the link-drop path.
  if (rate_ > 0) {
    complete_timer_.disarm();
    retry_timer_.disarm();
  }
  busy_ = false;
  if (in_flight_ != nullptr) link_drop(std::move(in_flight_), now);
  if (scheduler_ != nullptr) {
    scheduler_->flush(
        [this](PacketPtr victim, sim::Time t) {
          link_drop(std::move(victim), t);
        },
        now);
  }
}

double Port::utilization(sim::Time now) const {
  if (now <= 0 || rate_ <= 0) return 0.0;
  return bits_sent_ / (rate_ * now);
}

}  // namespace ispn::net
