#include "net/port.h"

#include <cassert>
#include <utility>

namespace ispn::net {

Port::Port(sim::Simulator& sim, sim::Rate rate,
           std::unique_ptr<sched::Scheduler> scheduler, Node* peer)
    : sim_(sim), rate_(rate), scheduler_(std::move(scheduler)), peer_(peer) {
  assert(peer_ != nullptr);
  assert(rate_ <= 0 || scheduler_ != nullptr);
  if (rate_ > 0) {
    // Persistent timers: closures constructed once here, re-armed per
    // packet.  Infinitely fast links never transmit-complete or retry.
    complete_timer_ = sim::Timer(sim_, [this] { complete(); });
    retry_timer_ = sim::Timer(sim_, [this] { try_start(); });
  }
  if (scheduler_ != nullptr) {
    // Installed once; victims are destroyed (returning to their pool) when
    // this sink returns.
    scheduler_->set_drop_sink([this](PacketPtr victim, sim::Time now) {
      ++drops_;
      for (const auto& hook : on_drop_) hook(*victim, now);
    });
  }
}

void Port::send(PacketPtr p) {
  assert(p != nullptr);
  if (rate_ <= 0) {
    // Infinitely fast link: no queueing, no transmission delay.  Stamp the
    // arrival anyway so downstream observers (tracers, sinks on all-fast
    // routes) never see a stale or default arrival time.
    p->enqueued_at = sim_.now();
    peer_->receive(std::move(p));
    return;
  }
  p->enqueued_at = sim_.now();
  scheduler_->enqueue(std::move(p), sim_.now());
  try_start();
}

void Port::try_start() {
  if (busy_ || scheduler_->empty()) return;
  // Non-work-conserving disciplines may hold packets: wait until the
  // scheduler's next eligibility instant, re-arming if it moves earlier.
  const sim::Time eligible = scheduler_->next_eligible(sim_.now());
  if (eligible > sim_.now()) {
    // Re-arm only when eligibility moved earlier; arming supersedes the
    // pending arm in place (no cancel, no slot churn).
    if (!retry_timer_.pending() || eligible < retry_timer_.expiry()) {
      retry_timer_.arm_at(eligible);
    }
    return;
  }
  in_flight_ = scheduler_->dequeue(sim_.now());
  // A scheduler may discard stale packets at dequeue time (§10) and come
  // up empty even though it reported a backlog a moment ago.
  if (in_flight_ == nullptr) return;
  // Waiting time at this hop: from arrival to start of transmission.
  in_flight_->queueing_delay += sim_.now() - in_flight_->enqueued_at;
  ++in_flight_->hops;
  busy_ = true;
  const sim::Duration tx_time = in_flight_->size_bits / rate_;
  complete_timer_.arm_after(tx_time);
}

void Port::complete() {
  assert(busy_ && in_flight_ != nullptr);
  PacketPtr p = std::move(in_flight_);
  busy_ = false;
  ++transmitted_;
  bits_sent_ += p->size_bits;
  for (const auto& hook : on_tx_) hook(*p, sim_.now());
  peer_->receive(std::move(p));
  try_start();
}

double Port::utilization(sim::Time now) const {
  if (now <= 0 || rate_ <= 0) return 0.0;
  return bits_sent_ / (rate_ * now);
}

}  // namespace ispn::net
