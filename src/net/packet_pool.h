// A slab-backed free list of Packet objects.
//
// Every packet the simulator pushes costs a make_packet(); with plain
// unique_ptr that is one malloc/free pair per packet — the single largest
// per-packet constant factor in the FIFO micro bench.  The pool allocates
// Packet storage in chunks, hands packets out reset-to-default, and takes
// them back through PacketPtr's custom deleter, so steady-state operation
// performs zero heap allocations: acquire is a vector pop, release a
// vector push into capacity reserved at chunk-allocation time.
//
// A pool can be owned per simulation for isolation (pass it to the
// make_packet() overload); the parameterless make_packet() used by the
// traffic sources draws from the process-wide default pool, which is safe
// because the simulator is strictly single-threaded and pooled storage is
// fungible across simulations.
//
// Sharded runs use one pool per domain with enable_concurrent_returns():
// a packet acquired in its source's domain may be delivered (and freed)
// in another domain running on another thread.  Foreign releases then go
// through a Treiber stack threaded through the freed packets' own storage
// (no allocation, no lock); the owning thread reclaims the whole stack
// with one exchange when its local free list runs dry.  acquire() remains
// owner-thread-only.  Without the opt-in the pool is single-threaded as
// before.

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace ispn::net {

class PacketPool {
 public:
  PacketPool() = default;

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  ~PacketPool() {
    reclaim_foreign();
    // Destroying a pool with packets still in flight would leave their
    // PacketPtrs pointing into freed chunks.
    assert(outstanding() == 0 && "packets still in flight");
  }

  /// Opts in to cross-thread release() (sharded runs).  acquire() stays
  /// owner-thread-only.
  void enable_concurrent_returns() { concurrent_ = true; }

  /// Process-wide default pool (single-threaded use only).
  static PacketPool& global() {
    static PacketPool pool;
    return pool;
  }

  /// Hands out a default-initialised packet.  Recycled storage is reset
  /// field-by-field, so no state leaks between pooled packets.
  PacketPtr acquire() {
    if (free_.empty()) {
      reclaim_foreign();
      if (free_.empty()) grow();
    }
    Packet* p = free_.back();
    free_.pop_back();
    *p = Packet{};
    ++acquired_;
    return PacketPtr(p, PacketDeleter{this});
  }

  /// Returns storage to the free list.  Only called via PacketDeleter with
  /// packets this pool handed out, so the push never exceeds the capacity
  /// reserved in grow() and cannot allocate.  In concurrent mode every
  /// release goes through the lock-free foreign stack — same-thread
  /// releases included, so release() needs no thread-identity check.
  void release(Packet* p) noexcept {
    if (concurrent_) {
      Packet* head = foreign_head_.load(std::memory_order_relaxed);
      do {
        // The freed packet's own bytes hold the intrusive next pointer;
        // acquire() overwrites them with a fresh Packet anyway.
        std::memcpy(static_cast<void*>(p), &head, sizeof head);
      } while (!foreign_head_.compare_exchange_weak(
          head, p, std::memory_order_release, std::memory_order_relaxed));
      foreign_count_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    assert(free_.size() < free_.capacity());
    free_.push_back(p);
  }

  /// Packets handed out and not yet returned.
  [[nodiscard]] std::size_t outstanding() const {
    return chunks_.size() * kChunkPackets - free_.size() -
           foreign_count_.load(std::memory_order_acquire);
  }

  /// Total Packet slots ever allocated (the slab high-water mark).
  [[nodiscard]] std::size_t slots() const {
    return chunks_.size() * kChunkPackets;
  }

  /// Total acquire() calls (diagnostic: acquires - slots = reuses).
  [[nodiscard]] std::uint64_t acquires() const { return acquired_; }

 private:
  static constexpr std::size_t kChunkPackets = 256;

  /// Owner-thread only: swallows the whole foreign-return stack into the
  /// local free list.  One exchange claims every node; concurrent pushes
  /// after the exchange start a fresh stack for the next reclaim.
  void reclaim_foreign() {
    Packet* p = foreign_head_.exchange(nullptr, std::memory_order_acquire);
    std::size_t n = 0;
    while (p != nullptr) {
      Packet* next = nullptr;
      std::memcpy(&next, static_cast<void*>(p), sizeof next);
      assert(free_.size() < free_.capacity());
      free_.push_back(p);
      p = next;
      ++n;
    }
    if (n != 0) foreign_count_.fetch_sub(n, std::memory_order_relaxed);
  }

  void grow() {
    chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
    free_.reserve(chunks_.size() * kChunkPackets);
    Packet* base = chunks_.back().get();
    for (std::size_t i = 0; i < kChunkPackets; ++i) {
      free_.push_back(base + kChunkPackets - 1 - i);  // hand out in order
    }
  }

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  std::uint64_t acquired_ = 0;
  bool concurrent_ = false;
  std::atomic<Packet*> foreign_head_{nullptr};
  std::atomic<std::size_t> foreign_count_{0};
};

inline void PacketDeleter::operator()(Packet* p) const noexcept {
  if (pool != nullptr) {
    pool->release(p);
  } else {
    delete p;
  }
}

/// Convenience factory drawing from `pool`.
inline PacketPtr make_packet(PacketPool& pool, FlowId flow, std::uint64_t seq,
                             NodeId src, NodeId dst, sim::Time created,
                             sim::Bits bits = sim::paper::kPacketBits) {
  PacketPtr p = pool.acquire();
  p->flow = flow;
  p->seq = seq;
  p->src = src;
  p->dst = dst;
  p->created_at = created;
  p->size_bits = bits;
  return p;
}

/// Convenience factory on the process-wide default pool.
inline PacketPtr make_packet(FlowId flow, std::uint64_t seq, NodeId src,
                             NodeId dst, sim::Time created,
                             sim::Bits bits = sim::paper::kPacketBits) {
  return make_packet(PacketPool::global(), flow, seq, src, dst, created, bits);
}

/// Duplicates a packet (e.g. per-hop copies in offline analyses).
inline PacketPtr clone_packet(const Packet& src) {
  PacketPtr p = PacketPool::global().acquire();
  *p = src;
  return p;
}

}  // namespace ispn::net
