// A host: packet sources inject through it; sinks register per flow.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/node.h"
#include "net/port.h"
#include "util/direct_map_cache.h"
#include "util/slot_map.h"

namespace ispn::net {

/// Receives the packets of one flow at its destination host.
class FlowSink {
 public:
  virtual ~FlowSink() = default;
  /// Takes ownership of a delivered packet.  `now` is the delivery instant.
  virtual void on_packet(PacketPtr p, sim::Time now) = 0;
};

class Host final : public Node {
 public:
  Host(sim::Simulator& sim, NodeId id, std::string name)
      : Node(id, std::move(name)), sim_(&sim) {}

  /// Sets the (single) uplink port towards this host's switch.
  void set_uplink(std::unique_ptr<Port> port) { uplink_ = std::move(port); }

  /// Moves the host onto another clock.  Sharded runs adopt each host
  /// into its switch's domain when the connecting link is built; must not
  /// be called once packets are flowing.
  void rebind_sim(sim::Simulator& sim) { sim_ = &sim; }
  [[nodiscard]] sim::Simulator& sim() { return *sim_; }

  /// Injects a locally generated packet into the network.
  void inject(PacketPtr p);

  /// Registers the sink for packets of `flow` delivered here.  A flow may
  /// have at most one sink per host.  Returns the dense sink slot; a
  /// source holding it may stamp Packet::sink_slot so delivery skips the
  /// table lookup entirely (the VC-style label fast path).
  std::uint32_t register_sink(FlowId flow, FlowSink* sink);

  /// Delivers arriving packets to the matching sink; packets without a
  /// sink are counted and discarded (unclaimed).  A packet carrying a
  /// valid sink-slot label (checked against its flow id) dispatches with
  /// a single indexed access; unlabelled packets go through a
  /// direct-mapped flow-locality cache (DEC-TR-592) in front of a flat
  /// open-addressing table — O(1), allocation-free, never a tree walk.
  void receive(PacketPtr p) override;

  [[nodiscard]] std::uint64_t unclaimed() const { return unclaimed_; }
  [[nodiscard]] Port* uplink() { return uplink_.get(); }

  /// Flow-locality cache counters (exported into ScenarioReport).
  [[nodiscard]] std::uint64_t sink_cache_hits() const { return cache_.hits(); }
  [[nodiscard]] std::uint64_t sink_cache_misses() const {
    return cache_.misses();
  }
  /// Deliveries taken by the sink-slot label fast path.
  [[nodiscard]] std::uint64_t sink_label_hits() const { return label_hits_; }

  /// Warms the labelled delivery path: loads the sink-table entry (the
  /// demand fetch overlaps the packet's final transmission) and hints the
  /// sink object behind it, so receive() finds both resident.
  void prefetch_delivery(const Packet& p) const override {
    const std::uint32_t label = p.sink_slot;
    if (label < sinks_.size() && sinks_[label].flow == p.flow) {
      __builtin_prefetch(sinks_[label].sink);
    }
  }

 private:
  /// One delivery binding; flow id sits next to its sink so the label
  /// fast path validates and dispatches with a single memory access.
  struct SinkEntry {
    FlowId flow = kNoFlow;
    FlowSink* sink = nullptr;
  };

  sim::Simulator* sim_;
  std::unique_ptr<Port> uplink_;
  util::SlotMap sink_slots_;        // flow id -> dense slot
  std::vector<SinkEntry> sinks_;    // dense, by slot
  util::DirectMapCache<FlowId, FlowSink*> cache_;
  std::uint64_t unclaimed_ = 0;
  std::uint64_t label_hits_ = 0;
};

}  // namespace ispn::net
