// A host: packet sources inject through it; sinks register per flow.

#pragma once

#include <functional>
#include <map>
#include <memory>

#include "net/node.h"
#include "net/port.h"

namespace ispn::net {

/// Receives the packets of one flow at its destination host.
class FlowSink {
 public:
  virtual ~FlowSink() = default;
  /// Takes ownership of a delivered packet.  `now` is the delivery instant.
  virtual void on_packet(PacketPtr p, sim::Time now) = 0;
};

class Host final : public Node {
 public:
  Host(sim::Simulator& sim, NodeId id, std::string name)
      : Node(id, std::move(name)), sim_(&sim) {}

  /// Sets the (single) uplink port towards this host's switch.
  void set_uplink(std::unique_ptr<Port> port) { uplink_ = std::move(port); }

  /// Moves the host onto another clock.  Sharded runs adopt each host
  /// into its switch's domain when the connecting link is built; must not
  /// be called once packets are flowing.
  void rebind_sim(sim::Simulator& sim) { sim_ = &sim; }
  [[nodiscard]] sim::Simulator& sim() { return *sim_; }

  /// Injects a locally generated packet into the network.
  void inject(PacketPtr p);

  /// Registers the sink for packets of `flow` delivered here.  A flow may
  /// have at most one sink per host.
  void register_sink(FlowId flow, FlowSink* sink);

  /// Delivers arriving packets to the matching sink; packets without a
  /// sink are counted and discarded (unclaimed).
  void receive(PacketPtr p) override;

  [[nodiscard]] std::uint64_t unclaimed() const { return unclaimed_; }
  [[nodiscard]] Port* uplink() { return uplink_.get(); }

 private:
  sim::Simulator* sim_;
  std::unique_ptr<Port> uplink_;
  std::map<FlowId, FlowSink*> sinks_;
  std::uint64_t unclaimed_ = 0;
};

}  // namespace ispn::net
