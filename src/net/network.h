// Network: the container that owns the simulator, nodes, links and per-flow
// statistics, and wires drop accounting into every port.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/flow.h"
#include "net/handoff.h"
#include "net/host.h"
#include "net/routing.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace ispn::net {

/// Creates the queueing discipline for one link direction.
using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

/// Directional variant: receives (from, to) so callers can key per-link
/// state (measurement, admission) by direction.
using DirectionalSchedulerFactory =
    std::function<std::unique_ptr<sched::Scheduler>(NodeId from, NodeId to)>;

/// Rate-aware variant: additionally receives the link rate, so fabrics
/// with per-hop rates (parking lots, aggregation trees) can size each
/// scheduler, measurement window and admission registration to the link
/// it actually serves.
using LinkSchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>(
    NodeId from, NodeId to, sim::Rate rate)>;

/// Adapts the simpler factory shapes to the rate-aware one (an empty
/// factory stays empty, so infinitely fast links still need none).  The
/// single adaptation point for Network::connect and the topology
/// builders.
[[nodiscard]] inline LinkSchedulerFactory rate_aware(SchedulerFactory make) {
  if (!make) return {};
  return [make = std::move(make)](NodeId, NodeId, sim::Rate) {
    return make();
  };
}
[[nodiscard]] inline LinkSchedulerFactory rate_aware(
    DirectionalSchedulerFactory make) {
  if (!make) return {};
  return [make = std::move(make)](NodeId from, NodeId to, sim::Rate) {
    return make(from, to);
  };
}

class Network {
 public:
  /// `backend` selects the simulator's event-ordering structure; every
  /// backend produces the identical packet schedule (proven by
  /// tests/test_event_backend_diff.cc), so it is purely a perf knob.
  explicit Network(sim::EventBackend backend = sim::EventBackend::kAuto)
      : sim_(backend), backend_(backend) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The control simulator: the only clock in classic mode; the barrier
  /// clock for admission/failure/stop events in sharded mode.
  [[nodiscard]] sim::Simulator& sim() { return sim_; }

  // --- sharded (per-switch domain) execution --------------------------

  /// Opts in to the sharded execution model BEFORE any node is added:
  /// every switch becomes its own domain with its own Simulator clock and
  /// PacketPool; hosts join their switch's domain when connected; every
  /// switch-switch link carries `link_latency` seconds of propagation
  /// delay and hands packets across domains through a LinkMailbox.  The
  /// decomposition is a function of the topology alone — never of how
  /// many threads later execute it — which is what makes shard-count
  /// variation bit-identical (sim/shard.h).
  void enable_sharding(sim::Duration link_latency);
  [[nodiscard]] bool sharded() const { return sharded_; }
  [[nodiscard]] sim::Duration link_latency() const { return link_latency_; }

  /// The clock that owns node `id`: its domain's simulator when sharded,
  /// the control simulator otherwise.  Sources and sinks for a flow must
  /// schedule on the clock of the host they sit on.
  [[nodiscard]] sim::Simulator& sim_for(NodeId id);

  /// Domain index of node `id` (sharded mode only).
  [[nodiscard]] int domain_of(NodeId id) const { return domain_of_.at(id); }
  [[nodiscard]] std::size_t num_domains() const { return domains_.size(); }
  [[nodiscard]] sim::Simulator& domain_sim(std::size_t d) {
    return *domains_.at(d).sim;
  }

  /// The packet pool sources on node `id` should draw from: the owning
  /// domain's concurrent-return pool when sharded, the global pool
  /// otherwise.
  [[nodiscard]] PacketPool& pool_for(NodeId id);

  /// Drains every cross-domain mailbox in creation order (the shard
  /// engine's exchange hook; call only at barriers).  Returns packets
  /// moved.
  std::size_t exchange();

  /// Adds a host; its id is returned via Host::id().
  Host& add_host(const std::string& name);

  /// Adds a switch.
  Switch& add_switch(const std::string& name);

  /// Connects two nodes with a duplex link of `rate` bits/s per direction.
  /// `make_scheduler` is invoked once per direction; it may be empty when
  /// `rate <= 0` (infinitely fast link, no queueing — the paper's
  /// host-switch attachment).  Host endpoints gain their uplink; switch
  /// endpoints gain a port.  Hosts may have only one link.
  void connect(NodeId a, NodeId b, sim::Rate rate,
               const SchedulerFactory& make_scheduler = {});

  /// As above, with a direction-aware factory.
  void connect(NodeId a, NodeId b, sim::Rate rate,
               const DirectionalSchedulerFactory& make_scheduler);

  /// As above, with a direction- and rate-aware factory.
  void connect(NodeId a, NodeId b, sim::Rate rate,
               const LinkSchedulerFactory& make_scheduler);

  /// True if `id` names a host (false: a switch).
  [[nodiscard]] bool is_host(NodeId id) const { return is_host_.at(id); }

  /// Computes BFS next-hop tables and installs them on every switch.
  /// Call after all links exist and before traffic starts.
  void build_routes();

  /// Takes the duplex link a<->b down (up=false) or back up (up=true) at
  /// the simulator's current time, then recomputes every switch's routing
  /// table over the surviving links.  Packets in flight or queued on a
  /// failing link are lost and attributed to the owning flow's
  /// failed_link_drops.  No-op when the link is already in that state.
  void set_link_up(NodeId a, NodeId b, bool up);

  /// True when the a<->b link is itself up (its OWN state: a crashed
  /// endpoint does not flip this — see effective_link_up).
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const {
    return !down_links_.contains(undirected(a, b));
  }

  /// True when packets can actually traverse a<->b: the link is up AND
  /// neither endpoint switch has crashed.
  [[nodiscard]] bool effective_link_up(NodeId a, NodeId b) const {
    return link_up(a, b) && !down_nodes_.contains(a) &&
           !down_nodes_.contains(b);
  }

  /// Crashes (up=false) or recovers (up=true) a switch: every incident
  /// link's ports go down ATOMICALLY (queued and in-flight packets flush
  /// into the owning flows' node_failure_drops bucket), then routes are
  /// recomputed ONCE.  Recovery restores only links that are themselves
  /// up (a link that failed independently stays down).  No-op when the
  /// node is already in that state.
  void set_node_up(NodeId node, bool up);

  /// True when the switch has not crashed.
  [[nodiscard]] bool node_up(NodeId node) const {
    return !down_nodes_.contains(node);
  }

  /// Re-rates the duplex link a<->b (capacity brown-out / restore): both
  /// ports transmit at `rate` from now on.  Schedulers, measurement and
  /// admission are re-rated by their owners (core::IspnNetwork).
  void set_link_rate(NodeId a, NodeId b, sim::Rate rate);

  /// The current (possibly browned-out) rate of link a->b.
  [[nodiscard]] sim::Rate link_rate(NodeId a, NodeId b) const {
    return link_rate_.at({a, b});
  }

  /// The as-built graph minus failed links and crashed switches.
  [[nodiscard]] Adjacency active_adjacency() const {
    return filter_adjacency(adjacency_, down_links_, down_nodes_);
  }

  /// Packets currently inside cross-domain mailboxes or scheduled but not
  /// yet arrived (sharded runs; 0 otherwise).  A mid-run conservation
  /// audit must count these: they are in no port's queue.
  [[nodiscard]] std::uint64_t handoff_in_transit() const;

  /// Lifetime total of mailbox ring overflows across every link.
  [[nodiscard]] std::uint64_t mailbox_spills() const;

  /// Forces every subsequently created mailbox ring to `cap` entries
  /// (test hook: a tiny ring exercises the barrier-only spill path under
  /// bursts no sane BDP sizing would overflow).  Call before connect().
  void set_mailbox_capacity_override(std::size_t cap) {
    mailbox_cap_override_ = cap;
  }

  /// Reinstalls next-hop tables over the active adjacency (what
  /// set_link_up does after flipping a link).
  void rebuild_routes();

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] Host& host(NodeId id);
  [[nodiscard]] Switch& switch_node(NodeId id);

  /// The output port from `from` towards neighbor `to`; nullptr if absent.
  [[nodiscard]] Port* port(NodeId from, NodeId to);

  /// Per-flow statistics record (created on first use).
  [[nodiscard]] FlowStats& stats(FlowId flow) { return stats_[flow]; }
  [[nodiscard]] const std::map<FlowId, FlowStats>& all_stats() const {
    return stats_;
  }

  /// Registers a recording sink for `flow` at `dst` that fills stats(flow)
  /// and optionally forwards to `next` (e.g. a playback application or a
  /// TCP sink).
  void attach_stats_sink(FlowId flow, NodeId dst, FlowSink* next = nullptr);

  /// Route (node sequence) currently used from src to dst over the ACTIVE
  /// adjacency; empty when failed links leave dst unreachable.
  [[nodiscard]] std::vector<NodeId> route(NodeId src, NodeId dst) const;

  /// Number of finite-rate (queueing) links on the route src -> dst.
  [[nodiscard]] std::size_t queueing_hops(NodeId src, NodeId dst) const;

  /// The as-built graph, failed links included; see active_adjacency().
  [[nodiscard]] const Adjacency& adjacency() const { return adjacency_; }

 private:
  class RecordingSink;

  void connect_impl(NodeId a, NodeId b, sim::Rate rate,
                    const LinkSchedulerFactory& make_scheduler);

  /// Drives both ports of a<->b to their effective state (link state AND
  /// endpoint node state combined), flushing on a transition to down.
  void apply_port_state(NodeId a, NodeId b);

  /// Per-flow stats record for packet-path hooks: find-only in sharded
  /// mode (entries are pre-created at flow-open time on the control
  /// thread, via attach_stats_sink or an explicit stats() call; a map
  /// insert from a domain thread would race the structure).
  [[nodiscard]] FlowStats& hot_stats(FlowId flow);

  struct Domain {
    std::unique_ptr<sim::Simulator> sim;
    std::unique_ptr<PacketPool> pool;
  };

  sim::Simulator sim_;
  sim::EventBackend backend_;
  // Declared BEFORE nodes_: destruction runs in reverse, and Port
  // destructors release timers into their domain's event queue and
  // packets into their domain's pool — both must outlive every node.
  // Mailboxes sit between (their destructor returns undelivered packets
  // to the domain pools).
  bool sharded_ = false;
  sim::Duration link_latency_ = 0;
  std::vector<Domain> domains_;
  std::map<NodeId, int> domain_of_;
  std::vector<std::unique_ptr<LinkMailbox>> mailboxes_;  // creation order
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<NodeId, bool> is_host_;
  Adjacency adjacency_;
  std::set<std::pair<NodeId, NodeId>> down_links_;  // undirected (min,max)
  std::set<NodeId> down_nodes_;                     // crashed switches
  std::map<std::pair<NodeId, NodeId>, sim::Rate> link_rate_;
  std::size_t mailbox_cap_override_ = 0;  // 0: BDP-sized (the default)
  std::map<FlowId, FlowStats> stats_;
  std::vector<std::unique_ptr<FlowSink>> sinks_;
};

}  // namespace ispn::net
