// Network: the container that owns the simulator, nodes, links and per-flow
// statistics, and wires drop accounting into every port.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/flow.h"
#include "net/host.h"
#include "net/routing.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace ispn::net {

/// Creates the queueing discipline for one link direction.
using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

/// Directional variant: receives (from, to) so callers can key per-link
/// state (measurement, admission) by direction.
using DirectionalSchedulerFactory =
    std::function<std::unique_ptr<sched::Scheduler>(NodeId from, NodeId to)>;

/// Rate-aware variant: additionally receives the link rate, so fabrics
/// with per-hop rates (parking lots, aggregation trees) can size each
/// scheduler, measurement window and admission registration to the link
/// it actually serves.
using LinkSchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>(
    NodeId from, NodeId to, sim::Rate rate)>;

/// Adapts the simpler factory shapes to the rate-aware one (an empty
/// factory stays empty, so infinitely fast links still need none).  The
/// single adaptation point for Network::connect and the topology
/// builders.
[[nodiscard]] inline LinkSchedulerFactory rate_aware(SchedulerFactory make) {
  if (!make) return {};
  return [make = std::move(make)](NodeId, NodeId, sim::Rate) {
    return make();
  };
}
[[nodiscard]] inline LinkSchedulerFactory rate_aware(
    DirectionalSchedulerFactory make) {
  if (!make) return {};
  return [make = std::move(make)](NodeId from, NodeId to, sim::Rate) {
    return make(from, to);
  };
}

class Network {
 public:
  /// `backend` selects the simulator's event-ordering structure; every
  /// backend produces the identical packet schedule (proven by
  /// tests/test_event_backend_diff.cc), so it is purely a perf knob.
  explicit Network(sim::EventBackend backend = sim::EventBackend::kAuto)
      : sim_(backend) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Simulator& sim() { return sim_; }

  /// Adds a host; its id is returned via Host::id().
  Host& add_host(const std::string& name);

  /// Adds a switch.
  Switch& add_switch(const std::string& name);

  /// Connects two nodes with a duplex link of `rate` bits/s per direction.
  /// `make_scheduler` is invoked once per direction; it may be empty when
  /// `rate <= 0` (infinitely fast link, no queueing — the paper's
  /// host-switch attachment).  Host endpoints gain their uplink; switch
  /// endpoints gain a port.  Hosts may have only one link.
  void connect(NodeId a, NodeId b, sim::Rate rate,
               const SchedulerFactory& make_scheduler = {});

  /// As above, with a direction-aware factory.
  void connect(NodeId a, NodeId b, sim::Rate rate,
               const DirectionalSchedulerFactory& make_scheduler);

  /// As above, with a direction- and rate-aware factory.
  void connect(NodeId a, NodeId b, sim::Rate rate,
               const LinkSchedulerFactory& make_scheduler);

  /// True if `id` names a host (false: a switch).
  [[nodiscard]] bool is_host(NodeId id) const { return is_host_.at(id); }

  /// Computes BFS next-hop tables and installs them on every switch.
  /// Call after all links exist and before traffic starts.
  void build_routes();

  /// Takes the duplex link a<->b down (up=false) or back up (up=true) at
  /// the simulator's current time, then recomputes every switch's routing
  /// table over the surviving links.  Packets in flight or queued on a
  /// failing link are lost and attributed to the owning flow's
  /// failed_link_drops.  No-op when the link is already in that state.
  void set_link_up(NodeId a, NodeId b, bool up);

  /// True when the a<->b link is currently up.
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const {
    return !down_links_.contains(undirected(a, b));
  }

  /// The as-built graph minus currently failed links.
  [[nodiscard]] Adjacency active_adjacency() const {
    return filter_adjacency(adjacency_, down_links_);
  }

  /// Reinstalls next-hop tables over the active adjacency (what
  /// set_link_up does after flipping a link).
  void rebuild_routes();

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] Host& host(NodeId id);
  [[nodiscard]] Switch& switch_node(NodeId id);

  /// The output port from `from` towards neighbor `to`; nullptr if absent.
  [[nodiscard]] Port* port(NodeId from, NodeId to);

  /// Per-flow statistics record (created on first use).
  [[nodiscard]] FlowStats& stats(FlowId flow) { return stats_[flow]; }
  [[nodiscard]] const std::map<FlowId, FlowStats>& all_stats() const {
    return stats_;
  }

  /// Registers a recording sink for `flow` at `dst` that fills stats(flow)
  /// and optionally forwards to `next` (e.g. a playback application or a
  /// TCP sink).
  void attach_stats_sink(FlowId flow, NodeId dst, FlowSink* next = nullptr);

  /// Route (node sequence) currently used from src to dst over the ACTIVE
  /// adjacency; empty when failed links leave dst unreachable.
  [[nodiscard]] std::vector<NodeId> route(NodeId src, NodeId dst) const;

  /// Number of finite-rate (queueing) links on the route src -> dst.
  [[nodiscard]] std::size_t queueing_hops(NodeId src, NodeId dst) const;

  /// The as-built graph, failed links included; see active_adjacency().
  [[nodiscard]] const Adjacency& adjacency() const { return adjacency_; }

 private:
  class RecordingSink;

  void connect_impl(NodeId a, NodeId b, sim::Rate rate,
                    const LinkSchedulerFactory& make_scheduler);

  sim::Simulator sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<NodeId, bool> is_host_;
  Adjacency adjacency_;
  std::set<std::pair<NodeId, NodeId>> down_links_;  // undirected (min,max)
  std::map<std::pair<NodeId, NodeId>, sim::Rate> link_rate_;
  std::map<FlowId, FlowStats> stats_;
  std::vector<std::unique_ptr<FlowSink>> sinks_;
};

}  // namespace ispn::net
