#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::net {

class Network::RecordingSink final : public FlowSink {
 public:
  RecordingSink(FlowStats& stats, FlowSink* next) : stats_(stats), next_(next) {}

  void on_packet(PacketPtr p, sim::Time now) override {
    ++stats_.received;
    stats_.bits_received += p->size_bits;
    stats_.queueing_delay.add(p->queueing_delay);
    stats_.e2e_delay.add(now - p->created_at);
    if (next_ != nullptr) next_->on_packet(std::move(p), now);
  }

 private:
  FlowStats& stats_;
  FlowSink* next_;
};

void Network::enable_sharding(sim::Duration link_latency) {
  assert(nodes_.empty() && "enable sharding before building the topology");
  assert(link_latency > 0 && "sharded links need positive propagation delay");
  sharded_ = true;
  link_latency_ = link_latency;
}

sim::Simulator& Network::sim_for(NodeId id) {
  if (!sharded_) return sim_;
  return *domains_.at(static_cast<std::size_t>(domain_of_.at(id))).sim;
}

PacketPool& Network::pool_for(NodeId id) {
  if (!sharded_) return PacketPool::global();
  return *domains_.at(static_cast<std::size_t>(domain_of_.at(id))).pool;
}

std::size_t Network::exchange() {
  std::size_t n = 0;
  for (auto& mb : mailboxes_) n += mb->drain();
  return n;
}

FlowStats& Network::hot_stats(FlowId flow) {
  if (!sharded_) return stats_[flow];
  auto it = stats_.find(flow);
  assert(it != stats_.end() && "sharded stats entry not pre-created");
  return it->second;
}

Host& Network::add_host(const std::string& name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  // Sharded hosts start on the control clock and are adopted into their
  // switch's domain when the connecting link is built.
  auto host = std::make_unique<Host>(sim_, id, name);
  Host& ref = *host;
  nodes_.push_back(std::move(host));
  is_host_[id] = true;
  return ref;
}

Switch& Network::add_switch(const std::string& name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto sw = std::make_unique<Switch>(id, name);
  Switch& ref = *sw;
  nodes_.push_back(std::move(sw));
  is_host_[id] = false;
  if (sharded_) {
    // One domain per switch, ALWAYS — worker count never changes the
    // decomposition, only how domains map onto threads.
    domain_of_[id] = static_cast<int>(domains_.size());
    Domain d;
    d.sim = std::make_unique<sim::Simulator>(backend_);
    d.pool = std::make_unique<PacketPool>();
    d.pool->enable_concurrent_returns();
    domains_.push_back(std::move(d));
  }
  // A packet stranded by a partition is a failure casualty of the owning
  // flow, not a congestion drop.
  ref.set_no_route_hook(
      [this](const Packet& p) { ++hot_stats(p.flow).failed_link_drops; });
  return ref;
}

Host& Network::host(NodeId id) {
  assert(is_host_.at(id));
  return static_cast<Host&>(*nodes_.at(id));
}

Switch& Network::switch_node(NodeId id) {
  assert(!is_host_.at(id));
  return static_cast<Switch&>(*nodes_.at(id));
}

void Network::connect_impl(NodeId a, NodeId b, sim::Rate rate,
                           const LinkSchedulerFactory& make_scheduler) {
  assert(a != b);

  const bool switch_link = !is_host_.at(a) && !is_host_.at(b);
  if (sharded_) {
    if (switch_link) {
      // A zero-transmission-time cross-domain link would deliver inline
      // into another domain's state from the wrong thread; the lookahead
      // model needs every cross-domain hop to go through a mailbox.
      assert(rate > 0 && "sharded switch-switch links must be finite-rate");
    } else {
      // Adopt the host into its switch's domain before its uplink port
      // binds a clock.  Hosts have exactly one link, so adoption is
      // unambiguous.
      const NodeId h = is_host_.at(a) ? a : b;
      const NodeId s = is_host_.at(a) ? b : a;
      assert(!is_host_.at(s) && "host-host links are not supported");
      assert(!domain_of_.contains(h) && "host already connected");
      domain_of_[h] = domain_of_.at(s);
      host(h).rebind_sim(sim_for(h));
    }
  }

  auto install = [&](NodeId from, NodeId to) {
    std::unique_ptr<sched::Scheduler> scheduler;
    if (rate > 0) {
      assert(make_scheduler && "finite-rate link needs a scheduler factory");
      scheduler = make_scheduler(from, to, rate);
      assert(scheduler != nullptr);
    }
    Node* to_node = nodes_.at(to).get();
    auto port = std::make_unique<Port>(sharded_ ? sim_for(from) : sim_, rate,
                                       std::move(scheduler), to_node);
    port->add_drop_hook(
        [this](const Packet& p, sim::Time) { ++hot_stats(p.flow).net_drops; });
    // Attribute by cause at flush time: when either endpoint switch is
    // down the casualty belongs to the CRASH (set_node_up inserts the
    // node before flushing its star, so the hook observes the cause),
    // otherwise to the link failure.
    port->add_link_drop_hook([this, from, to](const Packet& p, sim::Time) {
      if (down_nodes_.contains(from) || down_nodes_.contains(to)) {
        ++hot_stats(p.flow).node_failure_drops;
      } else {
        ++hot_stats(p.flow).failed_link_drops;
      }
    });
    port->add_fault_drop_hook([this](const Packet& p, sim::Time) {
      ++hot_stats(p.flow).fault_drops;
    });
    if (sharded_ && switch_link) {
      // Directed mailbox from->to.  Ring sized to the link's bandwidth-
      // delay product in nominal 1000-bit packets, with slack for the
      // barrier-quantized drain cadence; the overflow vector absorbs
      // anything beyond (clamped so degenerate parameters stay sane).
      const double bdp_pkts = 4.0 * rate * link_latency_ / 1000.0 + 64.0;
      const std::size_t cap =
          mailbox_cap_override_ > 0
              ? mailbox_cap_override_
              : static_cast<std::size_t>(
                    std::min(std::max(bdp_pkts, 256.0), 65536.0));
      mailboxes_.push_back(std::make_unique<LinkMailbox>(
          link_latency_, sim_for(to), *to_node, cap));
      port->set_handoff(mailboxes_.back().get());
    }
    if (is_host_.at(from)) {
      host(from).set_uplink(std::move(port));
    } else {
      switch_node(from).attach_port(to, std::move(port));
    }
  };
  install(a, b);
  install(b, a);

  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  link_rate_[{a, b}] = rate;
  link_rate_[{b, a}] = rate;
}

void Network::connect(NodeId a, NodeId b, sim::Rate rate,
                      const SchedulerFactory& make_scheduler) {
  connect_impl(a, b, rate, rate_aware(make_scheduler));
}

void Network::connect(NodeId a, NodeId b, sim::Rate rate,
                      const DirectionalSchedulerFactory& make_scheduler) {
  connect_impl(a, b, rate, rate_aware(make_scheduler));
}

void Network::connect(NodeId a, NodeId b, sim::Rate rate,
                      const LinkSchedulerFactory& make_scheduler) {
  connect_impl(a, b, rate, make_scheduler);
}

void Network::build_routes() {
  // Deterministic BFS: neighbor lists sorted.  filter_adjacency preserves
  // this order, so rebuilds after failures keep the same tie-breaks.
  for (auto& [_, neighbors] : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  rebuild_routes();
}

void Network::rebuild_routes() {
  const Adjacency active = active_adjacency();
  for (const auto& node : nodes_) {
    if (is_host_.at(node->id())) continue;  // hosts send via their uplink
    auto& sw = static_cast<Switch&>(*node);
    sw.clear_routes();
    for (const auto& [dst, next] : compute_next_hops(active, sw.id())) {
      sw.set_route(dst, next);
    }
  }
}

void Network::apply_port_state(NodeId a, NodeId b) {
  // Ports track the EFFECTIVE state (link AND both endpoint nodes).
  // Transitions flush; non-transitions are no-ops, so flipping one cause
  // while another keeps the link down never double-flushes or wrongly
  // resurrects a port.
  const bool eff = effective_link_up(a, b);
  const sim::Time now = sim_.now();
  if (Port* p = port(a, b)) {
    if (p->link_up() != eff) p->set_link_up(eff, now);
  }
  if (Port* p = port(b, a)) {
    if (p->link_up() != eff) p->set_link_up(eff, now);
  }
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  assert(link_rate_.contains({a, b}) && "no such link");
  const auto key = undirected(a, b);
  if (up != down_links_.contains(key)) return;  // already in that state
  if (up) {
    down_links_.erase(key);
  } else {
    down_links_.insert(key);
  }
  apply_port_state(a, b);
  rebuild_routes();
}

void Network::set_node_up(NodeId node, bool up) {
  assert(!is_host_.at(node) && "only switches crash");
  if (up != down_nodes_.contains(node)) return;  // already in that state
  // Membership flips FIRST so the link-drop hooks firing during the
  // incident-star flush see the crash and attribute casualties to
  // node_failure_drops, and so apply_port_state computes the new
  // effective states.
  if (up) {
    down_nodes_.erase(node);
  } else {
    down_nodes_.insert(node);
  }
  for (const NodeId v : adjacency_.at(node)) apply_port_state(node, v);
  rebuild_routes();  // once, after the whole star transitioned
}

void Network::set_link_rate(NodeId a, NodeId b, sim::Rate rate) {
  assert(link_rate_.contains({a, b}) && "no such link");
  link_rate_[{a, b}] = rate;
  link_rate_[{b, a}] = rate;
  if (Port* p = port(a, b)) p->set_rate(rate);
  if (Port* p = port(b, a)) p->set_rate(rate);
}

std::uint64_t Network::handoff_in_transit() const {
  std::uint64_t n = 0;
  for (const auto& mb : mailboxes_) n += mb->in_transit();
  return n;
}

std::uint64_t Network::mailbox_spills() const {
  std::uint64_t n = 0;
  for (const auto& mb : mailboxes_) n += mb->spills();
  return n;
}

Port* Network::port(NodeId from, NodeId to) {
  if (is_host_.at(from)) return host(from).uplink();
  return switch_node(from).port_to(to);
}

void Network::attach_stats_sink(FlowId flow, NodeId dst, FlowSink* next) {
  auto sink = std::make_unique<RecordingSink>(stats_[flow], next);
  host(dst).register_sink(flow, sink.get());
  sinks_.push_back(std::move(sink));
}

std::vector<NodeId> Network::route(NodeId src, NodeId dst) const {
  if (down_links_.empty() && down_nodes_.empty()) {
    return shortest_path(adjacency_, src, dst);
  }
  return shortest_path(active_adjacency(), src, dst);
}

std::size_t Network::queueing_hops(NodeId src, NodeId dst) const {
  const auto path = route(src, dst);
  std::size_t hops = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (link_rate_.at({path[i], path[i + 1]}) > 0) ++hops;
  }
  return hops;
}

}  // namespace ispn::net
