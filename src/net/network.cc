#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::net {

class Network::RecordingSink final : public FlowSink {
 public:
  RecordingSink(FlowStats& stats, FlowSink* next) : stats_(stats), next_(next) {}

  void on_packet(PacketPtr p, sim::Time now) override {
    ++stats_.received;
    stats_.bits_received += p->size_bits;
    stats_.queueing_delay.add(p->queueing_delay);
    stats_.e2e_delay.add(now - p->created_at);
    if (next_ != nullptr) next_->on_packet(std::move(p), now);
  }

 private:
  FlowStats& stats_;
  FlowSink* next_;
};

Host& Network::add_host(const std::string& name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto host = std::make_unique<Host>(sim_, id, name);
  Host& ref = *host;
  nodes_.push_back(std::move(host));
  is_host_[id] = true;
  return ref;
}

Switch& Network::add_switch(const std::string& name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto sw = std::make_unique<Switch>(id, name);
  Switch& ref = *sw;
  nodes_.push_back(std::move(sw));
  is_host_[id] = false;
  // A packet stranded by a partition is a failure casualty of the owning
  // flow, not a congestion drop.
  ref.set_no_route_hook(
      [this](const Packet& p) { ++stats_[p.flow].failed_link_drops; });
  return ref;
}

Host& Network::host(NodeId id) {
  assert(is_host_.at(id));
  return static_cast<Host&>(*nodes_.at(id));
}

Switch& Network::switch_node(NodeId id) {
  assert(!is_host_.at(id));
  return static_cast<Switch&>(*nodes_.at(id));
}

void Network::connect_impl(NodeId a, NodeId b, sim::Rate rate,
                           const LinkSchedulerFactory& make_scheduler) {
  assert(a != b);

  auto install = [&](NodeId from, NodeId to) {
    std::unique_ptr<sched::Scheduler> scheduler;
    if (rate > 0) {
      assert(make_scheduler && "finite-rate link needs a scheduler factory");
      scheduler = make_scheduler(from, to, rate);
      assert(scheduler != nullptr);
    }
    Node* to_node = nodes_.at(to).get();
    auto port =
        std::make_unique<Port>(sim_, rate, std::move(scheduler), to_node);
    port->add_drop_hook(
        [this](const Packet& p, sim::Time) { ++stats_[p.flow].net_drops; });
    port->add_link_drop_hook([this](const Packet& p, sim::Time) {
      ++stats_[p.flow].failed_link_drops;
    });
    if (is_host_.at(from)) {
      host(from).set_uplink(std::move(port));
    } else {
      switch_node(from).attach_port(to, std::move(port));
    }
  };
  install(a, b);
  install(b, a);

  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  link_rate_[{a, b}] = rate;
  link_rate_[{b, a}] = rate;
}

void Network::connect(NodeId a, NodeId b, sim::Rate rate,
                      const SchedulerFactory& make_scheduler) {
  connect_impl(a, b, rate, rate_aware(make_scheduler));
}

void Network::connect(NodeId a, NodeId b, sim::Rate rate,
                      const DirectionalSchedulerFactory& make_scheduler) {
  connect_impl(a, b, rate, rate_aware(make_scheduler));
}

void Network::connect(NodeId a, NodeId b, sim::Rate rate,
                      const LinkSchedulerFactory& make_scheduler) {
  connect_impl(a, b, rate, make_scheduler);
}

void Network::build_routes() {
  // Deterministic BFS: neighbor lists sorted.  filter_adjacency preserves
  // this order, so rebuilds after failures keep the same tie-breaks.
  for (auto& [_, neighbors] : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  rebuild_routes();
}

void Network::rebuild_routes() {
  const Adjacency active = active_adjacency();
  for (const auto& node : nodes_) {
    if (is_host_.at(node->id())) continue;  // hosts send via their uplink
    auto& sw = static_cast<Switch&>(*node);
    sw.clear_routes();
    for (const auto& [dst, next] : compute_next_hops(active, sw.id())) {
      sw.set_route(dst, next);
    }
  }
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  assert(link_rate_.contains({a, b}) && "no such link");
  const auto key = undirected(a, b);
  if (up != down_links_.contains(key)) return;  // already in that state
  if (up) {
    down_links_.erase(key);
  } else {
    down_links_.insert(key);
  }
  const sim::Time now = sim_.now();
  if (Port* p = port(a, b)) p->set_link_up(up, now);
  if (Port* p = port(b, a)) p->set_link_up(up, now);
  rebuild_routes();
}

Port* Network::port(NodeId from, NodeId to) {
  if (is_host_.at(from)) return host(from).uplink();
  return switch_node(from).port_to(to);
}

void Network::attach_stats_sink(FlowId flow, NodeId dst, FlowSink* next) {
  auto sink = std::make_unique<RecordingSink>(stats_[flow], next);
  host(dst).register_sink(flow, sink.get());
  sinks_.push_back(std::move(sink));
}

std::vector<NodeId> Network::route(NodeId src, NodeId dst) const {
  if (down_links_.empty()) return shortest_path(adjacency_, src, dst);
  return shortest_path(active_adjacency(), src, dst);
}

std::size_t Network::queueing_hops(NodeId src, NodeId dst) const {
  const auto path = route(src, dst);
  std::size_t hops = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (link_rate_.at({path[i], path[i + 1]}) > 0) ++hops;
  }
  return hops;
}

}  // namespace ispn::net
