#include "net/switch.h"

#include <cassert>
#include <utility>

namespace ispn::net {

Port& Switch::attach_port(NodeId neighbor, std::unique_ptr<Port> port) {
  assert(port != nullptr);
  auto [it, inserted] = ports_.try_emplace(neighbor, std::move(port));
  assert(inserted && "port to this neighbor already attached");
  return *it->second;
}

void Switch::set_route(NodeId dst, NodeId next_hop) {
  assert(ports_.contains(next_hop) && "next hop has no port");
  NodeId& hop = routes_[dst];
  if (hop != next_hop) route_cache_.invalidate();
  hop = next_hop;
}

Port* Switch::port_to(NodeId neighbor) {
  auto it = ports_.find(neighbor);
  return it == ports_.end() ? nullptr : it->second.get();
}

void Switch::receive(PacketPtr p) {
  if (Port** cached = route_cache_.lookup(p->dst); cached != nullptr) {
    (*cached)->send(std::move(p));
    return;
  }
  auto it = routes_.find(p->dst);
  if (it == routes_.end()) {
    // Partition: links failed and no alternate path exists.  The packet is
    // lost here; the hook lets the network attribute it to the owning
    // flow's failed_link_drops so the conservation ledger still balances.
    ++no_route_drops_;
    if (no_route_) no_route_(*p);
    return;
  }
  Port* port = ports_.at(it->second).get();
  route_cache_.insert(p->dst, port);
  port->send(std::move(p));
}

}  // namespace ispn::net
