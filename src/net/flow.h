// Per-flow bookkeeping: identity and end-to-end statistics.

#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/units.h"
#include "stats/percentile.h"

namespace ispn::net {

/// End-to-end statistics of one flow, filled by the network's stats sink
/// and the source.  Delays are stored in seconds; helpers convert to the
/// paper's unit (packet transmission times).
struct FlowStats {
  stats::SampleSeries queueing_delay;  ///< summed waiting time across hops (s)
  stats::SampleSeries e2e_delay;       ///< delivery minus creation time (s)

  std::uint64_t generated = 0;     ///< packets produced by the source process
  std::uint64_t source_drops = 0;  ///< dropped by the edge token-bucket filter
  std::uint64_t injected = 0;      ///< entered the network
  std::uint64_t net_drops = 0;     ///< dropped at switch buffers
  /// Lost to topology churn rather than congestion: in flight or queued on
  /// a link when it failed, expelled from a rerouted guaranteed flow's WFQ
  /// queue, or arriving at a switch with no route (partition).  Kept apart
  /// from net_drops so the conservation ledger attributes every loss.
  std::uint64_t failed_link_drops = 0;
  std::uint64_t received = 0;      ///< delivered to the sink
  sim::Bits bits_received = 0;

  /// Mean queueing delay in packet transmission times (1 ms at 1 Mbit/s).
  [[nodiscard]] double mean_qdelay_pkt() const {
    return queueing_delay.mean() / sim::paper::kPacketTime;
  }
  /// 99.9th-percentile queueing delay in packet times.
  [[nodiscard]] double p999_qdelay_pkt() const {
    return queueing_delay.p999() / sim::paper::kPacketTime;
  }
  /// Maximum queueing delay in packet times.
  [[nodiscard]] double max_qdelay_pkt() const {
    return queueing_delay.max() / sim::paper::kPacketTime;
  }
  /// Fraction of injected packets lost inside the network.
  [[nodiscard]] double net_loss_rate() const {
    return injected == 0 ? 0.0
                         : static_cast<double>(net_drops) /
                               static_cast<double>(injected);
  }
  /// Fraction of generated packets dropped by the edge filter.
  [[nodiscard]] double source_drop_rate() const {
    return generated == 0 ? 0.0
                          : static_cast<double>(source_drops) /
                                static_cast<double>(generated);
  }
};

}  // namespace ispn::net
