// Per-flow bookkeeping: identity and end-to-end statistics.

#pragma once

#include <atomic>
#include <cstdint>

#include "net/packet.h"
#include "sim/units.h"
#include "stats/percentile.h"

namespace ispn::net {

/// A drop-in uint64 counter that tolerates increments from several domain
/// threads in a sharded run.  Increments are relaxed atomics — counts are
/// sums, no ordering needed; reads happen at barriers or after the run,
/// where the engine's mutex handoff already provides the happens-before.
/// Copyable (snapshot semantics) so FlowStats stays a value type.
class Counter {
 public:
  Counter() = default;
  Counter(std::uint64_t v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  Counter(const Counter& o) : v_(o.value()) {}
  Counter& operator=(const Counter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  Counter& operator=(std::uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  operator std::uint64_t() const { return value(); }  // NOLINT
  Counter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator+=(std::uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator-=(std::uint64_t d) {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// End-to-end statistics of one flow, filled by the network's stats sink
/// and the source.  Delays are stored in seconds; helpers convert to the
/// paper's unit (packet transmission times).
struct FlowStats {
  stats::SampleSeries queueing_delay;  ///< summed waiting time across hops (s)
  stats::SampleSeries e2e_delay;       ///< delivery minus creation time (s)

  /// Packets produced by the source process.  A Counter (not plain) because
  /// responsive flows produce in BOTH directions: data at the source, ACKs
  /// at the destination's transport sink, which lives in the dst domain in
  /// a sharded run.
  Counter generated;
  std::uint64_t source_drops = 0;  ///< dropped by the edge token-bucket filter
  /// Entered the network; Counter for the same two-domain reason as
  /// `generated` (ACK injection happens at the destination host).
  Counter injected;
  /// Dropped at switch buffers.  Drops can fire on any domain thread in a
  /// sharded run (the port's drop hook runs where the port runs), hence a
  /// Counter; the other fields are written only by the flow's source or
  /// sink, each of which lives in exactly one domain.
  Counter net_drops;
  /// Lost to topology churn rather than congestion: in flight or queued on
  /// a link when it failed, expelled from a rerouted guaranteed flow's WFQ
  /// queue, or arriving at a switch with no route (partition).  Kept apart
  /// from net_drops so the conservation ledger attributes every loss.
  Counter failed_link_drops;
  /// Casualties of a switch crash: queued or in flight on a link whose
  /// endpoint node went down (the whole incident star flushes at once).
  /// Kept apart from failed_link_drops so the ledger attributes a crash
  /// to the node, not to eight coincidental "link" failures.
  Counter node_failure_drops;
  /// Dropped by injected transient faults (per-link Bernoulli loss
  /// episodes): the packet consumed the wire — it was transmitted — but
  /// never arrived.  A fault-plane bucket, not congestion or topology.
  Counter fault_drops;
  std::uint64_t received = 0;      ///< delivered to the sink
  sim::Bits bits_received = 0;

  /// Mean queueing delay in packet transmission times (1 ms at 1 Mbit/s).
  [[nodiscard]] double mean_qdelay_pkt() const {
    return queueing_delay.mean() / sim::paper::kPacketTime;
  }
  /// 99.9th-percentile queueing delay in packet times.
  [[nodiscard]] double p999_qdelay_pkt() const {
    return queueing_delay.p999() / sim::paper::kPacketTime;
  }
  /// Maximum queueing delay in packet times.
  [[nodiscard]] double max_qdelay_pkt() const {
    return queueing_delay.max() / sim::paper::kPacketTime;
  }
  /// Fraction of injected packets lost inside the network.
  [[nodiscard]] double net_loss_rate() const {
    return injected == 0 ? 0.0
                         : static_cast<double>(net_drops) /
                               static_cast<double>(injected);
  }
  /// Fraction of generated packets dropped by the edge filter.
  [[nodiscard]] double source_drop_rate() const {
    return generated == 0 ? 0.0
                          : static_cast<double>(source_drops) /
                                static_cast<double>(generated);
  }
};

}  // namespace ispn::net
