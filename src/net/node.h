// Node: anything that can receive a packet (hosts and switches).

#pragma once

#include <string>

#include "net/packet.h"

namespace ispn::net {

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Accepts ownership of an arriving packet.
  virtual void receive(PacketPtr p) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

}  // namespace ispn::net
