// Node: anything that can receive a packet (hosts and switches).

#pragma once

#include <string>

#include "net/packet.h"

namespace ispn::net {

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Accepts ownership of an arriving packet.
  virtual void receive(PacketPtr p) = 0;

  /// Cache hint: warms the state receive() will touch for `p`, with no
  /// observable effect.  Ports call this when a packet starts its final
  /// timed transmission — one transmit-time (a few simulator events)
  /// before delivery, which is the lead a DRAM fetch needs when per-flow
  /// delivery state has outgrown the caches (the million-flow fabrics).
  virtual void prefetch_delivery(const Packet& p) const { (void)p; }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

}  // namespace ispn::net
