#include "net/topology.h"

#include <sstream>

namespace ispn::net {

ChainTopology build_chain(Network& net, int num_switches,
                          sim::Rate inter_switch_rate,
                          const SchedulerFactory& make_scheduler) {
  ChainTopology topo;
  for (int i = 0; i < num_switches; ++i) {
    auto& sw = net.add_switch("S-" + std::to_string(i + 1));
    topo.switches.push_back(sw.id());
    auto& host = net.add_host("Host-" + std::to_string(i + 1));
    topo.hosts.push_back(host.id());
    net.connect(host.id(), sw.id(), /*rate=*/0);  // infinitely fast
  }
  for (int i = 0; i + 1 < num_switches; ++i) {
    net.connect(topo.switches[static_cast<std::size_t>(i)],
                topo.switches[static_cast<std::size_t>(i + 1)],
                inter_switch_rate, make_scheduler);
  }
  net.build_routes();
  return topo;
}

std::string chain_ascii(const ChainTopology& topo) {
  std::ostringstream out;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    out << "Host-" << i + 1 << (i + 1 < topo.hosts.size() ? "   " : "");
  }
  out << '\n';
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    out << "  |   " << (i + 1 < topo.hosts.size() ? "   " : "");
  }
  out << '\n';
  for (std::size_t i = 0; i < topo.switches.size(); ++i) {
    out << " S-" << i + 1 << (i + 1 < topo.switches.size() ? " ----" : "");
  }
  out << '\n';
  return out.str();
}

DumbbellTopology build_dumbbell(Network& net, sim::Rate bottleneck_rate,
                                const SchedulerFactory& make_scheduler) {
  DumbbellTopology topo{};
  auto& s1 = net.add_switch("S-left");
  auto& s2 = net.add_switch("S-right");
  auto& h1 = net.add_host("H-left");
  auto& h2 = net.add_host("H-right");
  topo.left_switch = s1.id();
  topo.right_switch = s2.id();
  topo.left_host = h1.id();
  topo.right_host = h2.id();
  net.connect(h1.id(), s1.id(), /*rate=*/0);
  net.connect(h2.id(), s2.id(), /*rate=*/0);
  net.connect(s1.id(), s2.id(), bottleneck_rate, make_scheduler);
  net.build_routes();
  return topo;
}

FanInTopology build_fan_in(Network& net, int num_sources, sim::Rate feed_rate,
                           sim::Rate bottleneck_rate,
                           const SchedulerFactory& make_scheduler) {
  return build_fan_in(net,
                      std::vector<sim::Rate>(
                          static_cast<std::size_t>(num_sources), feed_rate),
                      bottleneck_rate, make_scheduler);
}

FanInTopology build_fan_in(Network& net,
                           const std::vector<sim::Rate>& feed_rates,
                           sim::Rate bottleneck_rate,
                           const SchedulerFactory& make_scheduler) {
  FanInTopology topo{};
  auto& merge = net.add_switch("S-M");
  auto& out = net.add_switch("S-out");
  auto& sink = net.add_host("Host-out");
  topo.merge_switch = merge.id();
  topo.sink_switch = out.id();
  topo.sink_host = sink.id();
  net.connect(sink.id(), out.id(), /*rate=*/0);
  net.connect(merge.id(), out.id(), bottleneck_rate, make_scheduler);
  for (std::size_t i = 0; i < feed_rates.size(); ++i) {
    auto& sw = net.add_switch("S-" + std::to_string(i + 1));
    auto& host = net.add_host("Host-" + std::to_string(i + 1));
    topo.edge_switches.push_back(sw.id());
    topo.src_hosts.push_back(host.id());
    net.connect(host.id(), sw.id(), /*rate=*/0);
    net.connect(sw.id(), merge.id(), feed_rates[i], make_scheduler);
  }
  net.build_routes();
  return topo;
}

}  // namespace ispn::net
