#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ispn::net {

namespace {

/// Shared core of build_chain and build_parking_lot: hop_rates.size()+1
/// switches S-1..S-n each with a Host-i on an infinitely fast link, hop i
/// connecting S-(i+1) -> S-(i+2) at hop_rates[i].
void chain_core(Network& net, const std::vector<sim::Rate>& hop_rates,
                const LinkSchedulerFactory& make_scheduler,
                std::vector<NodeId>* switches, std::vector<NodeId>* hosts) {
  const std::size_t num_switches = hop_rates.size() + 1;
  for (std::size_t i = 0; i < num_switches; ++i) {
    auto& sw = net.add_switch("S-" + std::to_string(i + 1));
    switches->push_back(sw.id());
    auto& host = net.add_host("Host-" + std::to_string(i + 1));
    hosts->push_back(host.id());
    net.connect(host.id(), sw.id(), /*rate=*/0);  // infinitely fast
  }
  for (std::size_t i = 0; i < hop_rates.size(); ++i) {
    net.connect((*switches)[i], (*switches)[i + 1], hop_rates[i],
                make_scheduler);
  }
  net.build_routes();
}

}  // namespace

ChainTopology build_chain(Network& net, int num_switches,
                          sim::Rate inter_switch_rate,
                          const LinkSchedulerFactory& make_scheduler) {
  ChainTopology topo;
  chain_core(net,
             std::vector<sim::Rate>(
                 static_cast<std::size_t>(std::max(num_switches - 1, 0)),
                 inter_switch_rate),
             make_scheduler, &topo.switches, &topo.hosts);
  return topo;
}

ChainTopology build_chain(Network& net, int num_switches,
                          sim::Rate inter_switch_rate,
                          const SchedulerFactory& make_scheduler) {
  return build_chain(net, num_switches, inter_switch_rate,
                     rate_aware(make_scheduler));
}

ChainTopology build_chain(Network& net, int num_switches,
                          sim::Rate inter_switch_rate,
                          const DirectionalSchedulerFactory& make_scheduler) {
  return build_chain(net, num_switches, inter_switch_rate,
                     rate_aware(make_scheduler));
}

std::string chain_ascii(const ChainTopology& topo) {
  std::ostringstream out;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    out << "Host-" << i + 1 << (i + 1 < topo.hosts.size() ? "   " : "");
  }
  out << '\n';
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    out << "  |   " << (i + 1 < topo.hosts.size() ? "   " : "");
  }
  out << '\n';
  for (std::size_t i = 0; i < topo.switches.size(); ++i) {
    out << " S-" << i + 1 << (i + 1 < topo.switches.size() ? " ----" : "");
  }
  out << '\n';
  return out.str();
}

DumbbellTopology build_dumbbell(Network& net, sim::Rate bottleneck_rate,
                                const DirectionalSchedulerFactory& make_scheduler) {
  DumbbellTopology topo{};
  auto& s1 = net.add_switch("S-left");
  auto& s2 = net.add_switch("S-right");
  auto& h1 = net.add_host("H-left");
  auto& h2 = net.add_host("H-right");
  topo.left_switch = s1.id();
  topo.right_switch = s2.id();
  topo.left_host = h1.id();
  topo.right_host = h2.id();
  net.connect(h1.id(), s1.id(), /*rate=*/0);
  net.connect(h2.id(), s2.id(), /*rate=*/0);
  net.connect(s1.id(), s2.id(), bottleneck_rate, make_scheduler);
  net.build_routes();
  return topo;
}

DumbbellTopology build_dumbbell(Network& net, sim::Rate bottleneck_rate,
                                const SchedulerFactory& make_scheduler) {
  DirectionalSchedulerFactory directional;
  if (make_scheduler) {
    directional = [make_scheduler](NodeId, NodeId) { return make_scheduler(); };
  }
  return build_dumbbell(net, bottleneck_rate, directional);
}

FanInTopology build_fan_in(Network& net, int num_sources, sim::Rate feed_rate,
                           sim::Rate bottleneck_rate,
                           const SchedulerFactory& make_scheduler) {
  return build_fan_in(net,
                      std::vector<sim::Rate>(
                          static_cast<std::size_t>(num_sources), feed_rate),
                      bottleneck_rate, make_scheduler);
}

FanInTopology build_fan_in(Network& net,
                           const std::vector<sim::Rate>& feed_rates,
                           sim::Rate bottleneck_rate,
                           const LinkSchedulerFactory& make_scheduler) {
  FanInTopology topo{};
  auto& merge = net.add_switch("S-M");
  auto& out = net.add_switch("S-out");
  auto& sink = net.add_host("Host-out");
  topo.merge_switch = merge.id();
  topo.sink_switch = out.id();
  topo.sink_host = sink.id();
  net.connect(sink.id(), out.id(), /*rate=*/0);
  net.connect(merge.id(), out.id(), bottleneck_rate, make_scheduler);
  for (std::size_t i = 0; i < feed_rates.size(); ++i) {
    auto& sw = net.add_switch("S-" + std::to_string(i + 1));
    auto& host = net.add_host("Host-" + std::to_string(i + 1));
    topo.edge_switches.push_back(sw.id());
    topo.src_hosts.push_back(host.id());
    net.connect(host.id(), sw.id(), /*rate=*/0);
    net.connect(sw.id(), merge.id(), feed_rates[i], make_scheduler);
  }
  net.build_routes();
  return topo;
}

FanInTopology build_fan_in(Network& net,
                           const std::vector<sim::Rate>& feed_rates,
                           sim::Rate bottleneck_rate,
                           const SchedulerFactory& make_scheduler) {
  return build_fan_in(net, feed_rates, bottleneck_rate,
                      rate_aware(make_scheduler));
}

FanInTopology build_fan_in(Network& net,
                           const std::vector<sim::Rate>& feed_rates,
                           sim::Rate bottleneck_rate,
                           const DirectionalSchedulerFactory& make_scheduler) {
  return build_fan_in(net, feed_rates, bottleneck_rate,
                      rate_aware(make_scheduler));
}

FanTreeTopology build_fan_tree(Network& net, int depth, int width,
                               const std::vector<sim::Rate>& level_rates,
                               const LinkSchedulerFactory& make_scheduler) {
  assert(depth >= 2 && "a tree needs a root level and at least one below");
  assert(width >= 1);
  assert(level_rates.size() == static_cast<std::size_t>(depth - 1));
  FanTreeTopology topo;
  topo.depth = depth;
  topo.width = width;
  topo.levels.resize(static_cast<std::size_t>(depth));

  auto& root = net.add_switch("T-0.0");
  topo.root_switch = root.id();
  topo.levels[0].push_back(root.id());
  auto& root_host = net.add_host("Host-root");
  topo.root_host = root_host.id();
  net.connect(root_host.id(), root.id(), /*rate=*/0);

  for (int d = 1; d < depth; ++d) {
    const auto& parents = topo.levels[static_cast<std::size_t>(d - 1)];
    auto& level = topo.levels[static_cast<std::size_t>(d)];
    for (std::size_t p = 0; p < parents.size(); ++p) {
      for (int c = 0; c < width; ++c) {
        auto& sw = net.add_switch(
            "T-" + std::to_string(d) + "." +
            std::to_string(p * static_cast<std::size_t>(width) +
                           static_cast<std::size_t>(c)));
        level.push_back(sw.id());
        net.connect(parents[p], sw.id(),
                    level_rates[static_cast<std::size_t>(d - 1)],
                    make_scheduler);
      }
    }
  }

  topo.leaf_switches = topo.levels[static_cast<std::size_t>(depth - 1)];
  topo.leaf_hosts.reserve(topo.leaf_switches.size());
  for (std::size_t i = 0; i < topo.leaf_switches.size(); ++i) {
    auto& host = net.add_host("Host-leaf-" + std::to_string(i));
    topo.leaf_hosts.push_back(host.id());
    net.connect(host.id(), topo.leaf_switches[i], /*rate=*/0);
  }
  net.build_routes();
  return topo;
}

ParkingLotTopology build_parking_lot(Network& net,
                                     const std::vector<sim::Rate>& hop_rates,
                                     const LinkSchedulerFactory& make_scheduler) {
  assert(!hop_rates.empty());
  ParkingLotTopology topo;
  chain_core(net, hop_rates, make_scheduler, &topo.switches, &topo.hosts);
  return topo;
}

MeshTopology build_mesh(Network& net, int rows, int cols, sim::Rate link_rate,
                        const LinkSchedulerFactory& make_scheduler) {
  assert(rows >= 1 && cols >= 1);
  assert(rows * cols >= 2 && "a mesh needs at least two switches");
  MeshTopology topo;
  topo.rows = rows;
  topo.cols = cols;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      auto& sw = net.add_switch("M-" + std::to_string(r) + "." +
                                std::to_string(c));
      topo.switches.push_back(sw.id());
      auto& host = net.add_host("Host-" + std::to_string(r) + "." +
                                std::to_string(c));
      topo.hosts.push_back(host.id());
      net.connect(host.id(), sw.id(), /*rate=*/0);  // infinitely fast
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        net.connect(topo.at(r, c), topo.at(r, c + 1), link_rate,
                    make_scheduler);
      }
      if (r + 1 < rows) {
        net.connect(topo.at(r, c), topo.at(r + 1, c), link_rate,
                    make_scheduler);
      }
    }
  }
  net.build_routes();
  return topo;
}

RingTopology build_ring(Network& net, int num_switches, sim::Rate link_rate,
                        const LinkSchedulerFactory& make_scheduler) {
  assert(num_switches >= 3 && "a ring needs at least three switches");
  RingTopology topo;
  for (int i = 0; i < num_switches; ++i) {
    auto& sw = net.add_switch("R-" + std::to_string(i));
    topo.switches.push_back(sw.id());
    auto& host = net.add_host("Host-" + std::to_string(i));
    topo.hosts.push_back(host.id());
    net.connect(host.id(), sw.id(), /*rate=*/0);
  }
  for (int i = 0; i < num_switches; ++i) {
    net.connect(topo.switches[static_cast<std::size_t>(i)],
                topo.switches[static_cast<std::size_t>((i + 1) % num_switches)],
                link_rate, make_scheduler);
  }
  net.build_routes();
  return topo;
}

ClosTopology build_clos(Network& net, int spines, int leaves,
                        sim::Rate link_rate,
                        const LinkSchedulerFactory& make_scheduler) {
  assert(spines >= 1 && leaves >= 2);
  ClosTopology topo;
  for (int s = 0; s < spines; ++s) {
    auto& sw = net.add_switch("Spine-" + std::to_string(s));
    topo.spines.push_back(sw.id());
  }
  for (int l = 0; l < leaves; ++l) {
    auto& sw = net.add_switch("Leaf-" + std::to_string(l));
    topo.leaves.push_back(sw.id());
    auto& host = net.add_host("Host-" + std::to_string(l));
    topo.hosts.push_back(host.id());
    net.connect(host.id(), sw.id(), /*rate=*/0);
    for (const NodeId spine : topo.spines) {
      net.connect(sw.id(), spine, link_rate, make_scheduler);
    }
  }
  net.build_routes();
  return topo;
}

}  // namespace ispn::net
