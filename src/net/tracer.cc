#include "net/tracer.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace ispn::net {

const char* to_label(PacketTracer::Event event) {
  switch (event) {
    case PacketTracer::Event::kTransmit: return "tx";
    case PacketTracer::Event::kDrop: return "drop";
    case PacketTracer::Event::kDeliver: return "deliver";
  }
  return "?";
}

class PacketTracer::DeliverySink final : public FlowSink {
 public:
  DeliverySink(PacketTracer& tracer, FlowSink* next)
      : tracer_(tracer), next_(next) {}

  /// Sharded delivery sinks route into their domain's buffer.
  DeliverySink(PacketTracer& tracer, FlowSink* next, std::size_t domain)
      : tracer_(tracer), next_(next), domain_(domain), sharded_(true) {}

  void on_packet(PacketPtr p, sim::Time now) override {
    const Record r{now,      Event::kDeliver,   p->flow, p->seq,
                   p->dst,   p->queueing_delay, p->jitter_offset};
    if (sharded_) {
      tracer_.record_domain(domain_, r);
    } else {
      tracer_.record(r);
    }
    if (next_ != nullptr) next_->on_packet(std::move(p), now);
  }

 private:
  PacketTracer& tracer_;
  FlowSink* next_;
  std::size_t domain_ = 0;
  bool sharded_ = false;
};

void PacketTracer::record(const Record& r) {
  if (records_.size() >= max_records_) {
    truncated_.store(true, std::memory_order_relaxed);
    return;
  }
  records_.push_back(r);
}

void PacketTracer::record_domain(std::size_t domain, const Record& r) {
  // The cap is a global memory bound shared by all domains; which records
  // survive a truncated sharded run may vary, but the golden suites all
  // assert !truncated(), so the hashed streams are never in that regime.
  if (total_.fetch_add(1, std::memory_order_relaxed) >= max_records_) {
    truncated_.store(true, std::memory_order_relaxed);
    return;
  }
  domain_records_[domain].push_back(r);
}

void PacketTracer::shard(std::size_t num_domains) {
  sharded_ = true;
  if (domain_records_.size() < num_domains) {
    domain_records_.resize(num_domains);
  }
}

void PacketTracer::attach(Network& net) {
  if (net.sharded()) shard(net.num_domains());
  for (const auto& [node, neighbors] : net.adjacency()) {
    for (const NodeId neighbor : neighbors) {
      Port* port = net.port(node, neighbor);
      if (port == nullptr || port->rate() <= 0) continue;
      const NodeId owner = node;
      if (sharded_) {
        const auto domain = static_cast<std::size_t>(net.domain_of(owner));
        port->add_tx_hook([this, owner, domain](const Packet& p,
                                                sim::Time now) {
          record_domain(domain, {now, Event::kTransmit, p.flow, p.seq, owner,
                                 p.queueing_delay, p.jitter_offset});
        });
        port->add_drop_hook([this, owner, domain](const Packet& p,
                                                  sim::Time now) {
          record_domain(domain, {now, Event::kDrop, p.flow, p.seq, owner,
                                 p.queueing_delay, p.jitter_offset});
        });
      } else {
        port->add_tx_hook([this, owner](const Packet& p, sim::Time now) {
          record({now, Event::kTransmit, p.flow, p.seq, owner,
                  p.queueing_delay, p.jitter_offset});
        });
        port->add_drop_hook([this, owner](const Packet& p, sim::Time now) {
          record({now, Event::kDrop, p.flow, p.seq, owner, p.queueing_delay,
                  p.jitter_offset});
        });
      }
    }
  }
}

FlowSink* PacketTracer::wrap_sink(FlowSink* next) {
  wrappers_.push_back(std::make_unique<DeliverySink>(*this, next));
  return wrappers_.back().get();
}

FlowSink* PacketTracer::wrap_sink(FlowSink* next, std::size_t domain) {
  assert(sharded_ && "attach() a sharded network first");
  assert(domain < domain_records_.size());
  wrappers_.push_back(std::make_unique<DeliverySink>(*this, next, domain));
  return wrappers_.back().get();
}

void PacketTracer::finalize() {
  if (!sharded_) return;
  std::size_t n = records_.size();
  for (const auto& buf : domain_records_) n += buf.size();
  records_.reserve(n);
  // Concatenate in domain order, then stable-sort by time: equal-time
  // records keep (domain index, within-domain order) — both worker-count
  // invariant, so the merged stream is too.
  for (auto& buf : domain_records_) {
    records_.insert(records_.end(), buf.begin(), buf.end());
    buf.clear();
  }
  std::stable_sort(
      records_.begin(), records_.end(),
      [](const Record& a, const Record& b) { return a.time < b.time; });
}

std::uint64_t PacketTracer::count(Event event) const {
  std::uint64_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event) ++n;
  }
  return n;
}

void PacketTracer::to_csv(std::ostream& out) const {
  out << "time,event,flow,seq,node,queueing_delay,jitter_offset\n";
  for (const auto& r : records_) {
    out << r.time << ',' << to_label(r.event) << ',' << r.flow << ','
        << r.seq << ',' << r.node << ',' << r.queueing_delay << ','
        << r.jitter_offset << '\n';
  }
}

void PacketTracer::clear() {
  records_.clear();
  for (auto& buf : domain_records_) buf.clear();
  total_.store(0, std::memory_order_relaxed);
  truncated_.store(false, std::memory_order_relaxed);
}

}  // namespace ispn::net
