#include "net/tracer.h"

#include <ostream>

namespace ispn::net {

const char* to_label(PacketTracer::Event event) {
  switch (event) {
    case PacketTracer::Event::kTransmit: return "tx";
    case PacketTracer::Event::kDrop: return "drop";
    case PacketTracer::Event::kDeliver: return "deliver";
  }
  return "?";
}

class PacketTracer::DeliverySink final : public FlowSink {
 public:
  DeliverySink(PacketTracer& tracer, FlowSink* next)
      : tracer_(tracer), next_(next) {}

  void on_packet(PacketPtr p, sim::Time now) override {
    tracer_.record({now, Event::kDeliver, p->flow, p->seq, p->dst,
                    p->queueing_delay, p->jitter_offset});
    if (next_ != nullptr) next_->on_packet(std::move(p), now);
  }

 private:
  PacketTracer& tracer_;
  FlowSink* next_;
};

void PacketTracer::record(const Record& r) {
  if (records_.size() >= max_records_) {
    truncated_ = true;
    return;
  }
  records_.push_back(r);
}

void PacketTracer::attach(Network& net) {
  for (const auto& [node, neighbors] : net.adjacency()) {
    for (const NodeId neighbor : neighbors) {
      Port* port = net.port(node, neighbor);
      if (port == nullptr || port->rate() <= 0) continue;
      const NodeId owner = node;
      port->add_tx_hook([this, owner](const Packet& p, sim::Time now) {
        record({now, Event::kTransmit, p.flow, p.seq, owner,
                p.queueing_delay, p.jitter_offset});
      });
      port->add_drop_hook([this, owner](const Packet& p, sim::Time now) {
        record({now, Event::kDrop, p.flow, p.seq, owner, p.queueing_delay,
                p.jitter_offset});
      });
    }
  }
}

FlowSink* PacketTracer::wrap_sink(FlowSink* next) {
  wrappers_.push_back(std::make_unique<DeliverySink>(*this, next));
  return wrappers_.back().get();
}

std::uint64_t PacketTracer::count(Event event) const {
  std::uint64_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event) ++n;
  }
  return n;
}

void PacketTracer::to_csv(std::ostream& out) const {
  out << "time,event,flow,seq,node,queueing_delay,jitter_offset\n";
  for (const auto& r : records_) {
    out << r.time << ',' << to_label(r.event) << ',' << r.flow << ','
        << r.seq << ',' << r.node << ',' << r.queueing_delay << ','
        << r.jitter_offset << '\n';
  }
}

void PacketTracer::clear() {
  records_.clear();
  truncated_ = false;
}

}  // namespace ispn::net
