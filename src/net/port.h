// Output port: a queueing discipline in front of a transmitter.
//
// The port stamps arriving packets (enqueued_at), offers them to its
// Scheduler, and models store-and-forward transmission: one packet in
// flight at a time, completing after size/rate seconds, then delivered to
// the peer node.  Waiting time (dequeue instant minus enqueued_at) is
// accumulated into the packet's queueing_delay — the statistic all of the
// paper's tables report.
//
// Drop accounting rides the scheduler's DropSink, installed once at
// construction: every victim (the offered packet under tail drop, a
// different one under pushout, a stale packet discarded at dequeue)
// increments drops() and fans out to the additive drop hooks, then
// returns to its PacketPool.  The offered packet's enqueued_at is stamped
// before the scheduler sees it, so its stamp is the same whether it is
// accepted, immediately evicted, or evicts somebody else.
//
// A non-positive rate means "infinitely fast" (the paper's host-switch
// links): the packet bypasses the queue and is delivered immediately —
// still stamped, so tracers and hooks downstream never observe an
// uninitialised arrival time on host-switch hops.
//
// The two per-packet events — transmit-complete and the eligibility
// retry of non-work-conserving disciplines — are persistent sim::Timers:
// the closure is built once at construction and every (re)schedule is a
// pure key insert.  Moving the retry earlier is a single re-arm (the
// pending arm is superseded in place), not a cancel+schedule pair.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/handoff.h"
#include "net/node.h"
#include "net/packet.h"
#include "sched/scheduler.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace ispn::net {

class Port {
 public:
  /// Called for every packet dropped at this port (before destruction).
  using DropHook = std::function<void(const Packet&, sim::Time)>;
  /// Called when a packet finishes transmission: (packet, now).
  using TxHook = std::function<void(const Packet&, sim::Time)>;

  /// `rate <= 0` models an infinitely fast link (no queueing).
  Port(sim::Simulator& sim, sim::Rate rate,
       std::unique_ptr<sched::Scheduler> scheduler, Node* peer);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Accepts a packet for transmission towards the peer.
  void send(PacketPtr p);

  /// Hooks are additive: several observers (statistics, measurement,
  /// tracing) may watch the same port.
  void add_drop_hook(DropHook hook) { on_drop_.push_back(std::move(hook)); }
  void add_tx_hook(TxHook hook) { on_tx_.push_back(std::move(hook)); }
  /// Separate from add_drop_hook: a link-failure casualty is not a buffer
  /// drop, and observers (per-flow stats) attribute the two to different
  /// ledger buckets.
  void add_link_drop_hook(DropHook hook) {
    on_link_drop_.push_back(std::move(hook));
  }
  /// Third bucket: packets destroyed by an INJECTED transient fault (the
  /// Bernoulli loss episodes of the fault plane).  They consumed the wire
  /// — transmitted() and the tx hooks count them — but never arrive.
  void add_fault_drop_hook(DropHook hook) {
    on_fault_drop_.push_back(std::move(hook));
  }

  /// Routes transmit-completions through a cross-domain mailbox instead
  /// of delivering inline to the peer (sharded runs; see net/handoff.h).
  /// The mailbox is not owned.
  void set_handoff(LinkMailbox* mailbox) { handoff_ = mailbox; }

  /// Takes the link up or down.  Going down cancels the in-flight
  /// transmission (the packet is lost mid-wire), flushes the queue, and
  /// refuses future sends until the link recovers; every casualty is
  /// reported to the link-drop hooks.  Going up resumes service from an
  /// empty queue.
  void set_link_up(bool up, sim::Time now);
  [[nodiscard]] bool link_up() const { return link_up_; }

  /// Re-rates the transmitter (capacity brown-out / restore).  The packet
  /// already on the wire completes at its committed instant; packets
  /// dequeued afterwards transmit at the new rate.  Only meaningful on
  /// finite-rate ports, and the new rate must stay positive — a dead link
  /// is set_link_up(false), not rate 0.
  void set_rate(sim::Rate rate);

  /// Arms (prob > 0) or disarms (prob <= 0) per-packet Bernoulli loss on
  /// this direction.  The draw sequence comes from a dedicated Rng
  /// (re)seeded here, so an episode's drops are a function of (seed,
  /// stream, packets transmitted since the episode began) — identical
  /// across shard counts and backends.
  void set_loss(double prob, std::uint64_t seed, std::uint64_t stream);
  [[nodiscard]] double loss_prob() const { return loss_prob_; }

  [[nodiscard]] sim::Rate rate() const { return rate_; }
  [[nodiscard]] Node& peer() const { return *peer_; }
  [[nodiscard]] sched::Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] bool busy() const { return busy_; }

  [[nodiscard]] std::uint64_t transmitted() const { return transmitted_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  /// Packets lost to link failure (in flight, queued at failure, or
  /// offered while down).  Never overlaps drops().
  [[nodiscard]] std::uint64_t link_drops() const { return link_drops_; }
  /// Packets destroyed by injected loss episodes.  Never overlaps either
  /// drops() or link_drops().
  [[nodiscard]] std::uint64_t fault_drops() const { return fault_drops_; }
  [[nodiscard]] sim::Bits bits_sent() const { return bits_sent_; }

  /// Link utilisation over [0, now] (bits sent / capacity).
  [[nodiscard]] double utilization(sim::Time now) const;

 private:
  void try_start();
  void complete();
  void link_drop(PacketPtr p, sim::Time now);

  sim::Simulator& sim_;
  sim::Rate rate_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  Node* peer_;
  LinkMailbox* handoff_ = nullptr;
  std::vector<DropHook> on_drop_;
  std::vector<DropHook> on_link_drop_;
  std::vector<DropHook> on_fault_drop_;
  std::vector<TxHook> on_tx_;

  PacketPtr in_flight_;
  bool busy_ = false;
  bool link_up_ = true;
  sim::Timer complete_timer_;  ///< in-flight transmission completion
  sim::Timer retry_timer_;     ///< eligibility poll
  std::uint64_t transmitted_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t link_drops_ = 0;
  std::uint64_t fault_drops_ = 0;
  sim::Bits bits_sent_ = 0;
  double loss_prob_ = 0;  ///< injected Bernoulli loss; 0 = off
  sim::Rng loss_rng_;     ///< (re)seeded by set_loss per episode
};

}  // namespace ispn::net
