// Packet-level tracing.
//
// Subscribes to every finite-rate port of a Network and records transmit
// and drop events (and, through wrap_sink(), deliveries) with timestamps
// and header fields.  Intended for debugging scheduler behaviour and for
// exporting per-packet CSV series (delay scatter plots, burst anatomy).
// Bounded: recording stops at `max_records` so a runaway run cannot eat
// the heap.
//
// Sharded runs: each domain thread appends to its own buffer (no lock on
// the hot path), and finalize() merges the buffers into one stream
// ordered by (time, domain index, within-domain order).  Both the
// per-domain buffers and the merge key are functions of the topology and
// the deterministic domain schedules — never of the worker count — so
// the merged trace is bit-identical for any shard count, which is
// exactly what the golden suite hashes.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "net/network.h"

namespace ispn::net {

class PacketTracer {
 public:
  enum class Event : std::uint8_t {
    kTransmit,  ///< packet finished transmission on a port
    kDrop,      ///< packet dropped at a port (buffer policy)
    kDeliver,   ///< packet reached its destination sink
  };

  struct Record {
    sim::Time time = 0;
    Event event = Event::kTransmit;
    FlowId flow = kNoFlow;
    std::uint64_t seq = 0;
    NodeId node = kNoNode;        ///< port owner / delivering host
    double queueing_delay = 0;    ///< accumulated so far (seconds)
    double jitter_offset = 0;     ///< FIFO+ header field
  };

  explicit PacketTracer(std::size_t max_records = 1u << 20)
      : max_records_(max_records) {}

  /// Hooks every existing finite-rate port of `net`.  Call after topology
  /// construction and before the run.  A sharded network switches the
  /// tracer into per-domain buffering; call finalize() before reading.
  void attach(Network& net);

  /// Returns a recording sink that forwards to `next` (may be null);
  /// register it (or pass it to Network::attach_stats_sink) to capture
  /// delivery events.  The tracer owns the wrapper.
  [[nodiscard]] FlowSink* wrap_sink(FlowSink* next = nullptr);

  /// Sharded variant: delivery records go to `domain`'s buffer (pass the
  /// destination host's domain).
  [[nodiscard]] FlowSink* wrap_sink(FlowSink* next, std::size_t domain);

  /// Pre-sizes the per-domain buffers so sinks can be wrapped before
  /// attach() runs (the scenario runner opens batch-mode flows at prepare
  /// time).  attach() on a sharded network calls this implicitly.
  void shard(std::size_t num_domains);

  /// Merges the per-domain buffers into the unified record stream (no-op
  /// for classic single-threaded tracing).  Call once, after the run.
  void finalize();

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] bool truncated() const {
    return truncated_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count(Event event) const;

  /// Writes "time,event,flow,seq,node,queueing_delay,jitter_offset" rows.
  void to_csv(std::ostream& out) const;

  void clear();

 private:
  class DeliverySink;

  void record(const Record& r);
  void record_domain(std::size_t domain, const Record& r);

  std::size_t max_records_;
  std::vector<Record> records_;
  std::atomic<bool> truncated_{false};
  std::vector<std::unique_ptr<FlowSink>> wrappers_;

  bool sharded_ = false;
  std::vector<std::vector<Record>> domain_records_;
  std::atomic<std::size_t> total_{0};  ///< records accepted across domains
};

/// Short label for CSV output ("tx", "drop", "deliver").
[[nodiscard]] const char* to_label(PacketTracer::Event event);

}  // namespace ispn::net
