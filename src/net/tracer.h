// Packet-level tracing.
//
// Subscribes to every finite-rate port of a Network and records transmit
// and drop events (and, through wrap_sink(), deliveries) with timestamps
// and header fields.  Intended for debugging scheduler behaviour and for
// exporting per-packet CSV series (delay scatter plots, burst anatomy).
// Bounded: recording stops at `max_records` so a runaway run cannot eat
// the heap.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "net/network.h"

namespace ispn::net {

class PacketTracer {
 public:
  enum class Event : std::uint8_t {
    kTransmit,  ///< packet finished transmission on a port
    kDrop,      ///< packet dropped at a port (buffer policy)
    kDeliver,   ///< packet reached its destination sink
  };

  struct Record {
    sim::Time time = 0;
    Event event = Event::kTransmit;
    FlowId flow = kNoFlow;
    std::uint64_t seq = 0;
    NodeId node = kNoNode;        ///< port owner / delivering host
    double queueing_delay = 0;    ///< accumulated so far (seconds)
    double jitter_offset = 0;     ///< FIFO+ header field
  };

  explicit PacketTracer(std::size_t max_records = 1u << 20)
      : max_records_(max_records) {}

  /// Hooks every existing finite-rate port of `net`.  Call after topology
  /// construction and before the run.
  void attach(Network& net);

  /// Returns a recording sink that forwards to `next` (may be null);
  /// register it (or pass it to Network::attach_stats_sink) to capture
  /// delivery events.  The tracer owns the wrapper.
  [[nodiscard]] FlowSink* wrap_sink(FlowSink* next = nullptr);

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] std::uint64_t count(Event event) const;

  /// Writes "time,event,flow,seq,node,queueing_delay,jitter_offset" rows.
  void to_csv(std::ostream& out) const;

  void clear();

 private:
  class DeliverySink;

  void record(const Record& r);

  std::size_t max_records_;
  std::vector<Record> records_;
  bool truncated_ = false;
  std::vector<std::unique_ptr<FlowSink>> wrappers_;
};

/// Short label for CSV output ("tx", "drop", "deliver").
[[nodiscard]] const char* to_label(PacketTracer::Event event);

}  // namespace ispn::net
