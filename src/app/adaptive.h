// Adaptive playback-point estimation (paper §2.3).
//
// An adaptive client measures the delays of arriving packets and moves its
// playback point to "the minimal delay that still produces a sufficiently
// low loss rate" — i.e. a high quantile of recently observed delays plus a
// safety margin.  The estimator keeps a sliding window of the last N
// delays and reports their q-quantile; the application re-evaluates the
// playback point periodically (re-adjusting too often would itself cause
// service interruptions, cf. §3).

#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "sim/units.h"

namespace ispn::app {

/// Sliding-window delay quantile estimator.
class DelayQuantileEstimator {
 public:
  /// Tracks the last `window` samples and answers `quantile` queries
  /// (nearest-rank).
  explicit DelayQuantileEstimator(std::size_t window = 512)
      : window_(window) {}

  void add(sim::Duration delay) {
    samples_.push_back(delay);
    if (samples_.size() > window_) samples_.pop_front();
  }

  /// q-quantile of the window; 0 when empty.
  [[nodiscard]] sim::Duration quantile(double q) const;

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool primed() const { return samples_.size() >= window_ / 4; }

 private:
  std::size_t window_;
  std::deque<sim::Duration> samples_;
};

}  // namespace ispn::app
