#include "app/adaptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ispn::app {

sim::Duration DelayQuantileEstimator::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  std::vector<sim::Duration> sorted(samples_.begin(), samples_.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace ispn::app
