#include "app/playback.h"

#include <algorithm>

namespace ispn::app {

PlaybackApp::PlaybackApp(Config config)
    : config_(config),
      estimator_(config.window),
      point_(config.initial_point),
      max_point_(config.initial_point) {}

void PlaybackApp::attach_clock(sim::Simulator& sim) {
  sim_ = &sim;
  replay_ = sim::Timer(sim, [this] { drain(sim_->now()); });
}

void PlaybackApp::drain(sim::Time now) {
  // Replay every packet whose instant has arrived (equal instants drain
  // together), then re-arm for the next outstanding one.
  while (!deadlines_.empty() && deadlines_.top() <= now) {
    deadlines_.pop();
    ++played_;
  }
  if (!deadlines_.empty()) replay_.arm_at(deadlines_.top());
}

void PlaybackApp::on_packet(net::PacketPtr p, sim::Time now) {
  const sim::Duration delay = now - p->created_at;
  ++received_;
  if (delay > point_) {
    ++late_;
  } else {
    slack_.add(point_ - delay);
    if (sim_ != nullptr) {
      // Buffer until the playback instant fixed at arrival.  Re-arm only
      // when this packet becomes the earliest (an adaptive point move can
      // reorder instants) — a pure in-place supersede.
      const sim::Time instant = p->created_at + point_;
      deadlines_.push(instant);
      max_buffered_ = std::max(max_buffered_, deadlines_.size());
      if (!replay_.pending() || instant < replay_.expiry()) {
        replay_.arm_at(instant);
      }
    }
  }
  if (config_.mode == Mode::kAdaptive) {
    estimator_.add(delay);
    ++since_adapt_;
    if (since_adapt_ >= config_.adapt_interval && estimator_.primed()) {
      since_adapt_ = 0;
      maybe_adapt(now);
    }
  }
}

void PlaybackApp::maybe_adapt(sim::Time now) {
  const sim::Duration target =
      estimator_.quantile(config_.quantile) + config_.margin;
  if (target == point_) return;
  point_ = target;
  max_point_ = std::max(max_point_, point_);
  history_.push_back({now, point_});
}

double PlaybackApp::loss_rate() const {
  return received_ == 0
             ? 0.0
             : static_cast<double>(late_) / static_cast<double>(received_);
}

}  // namespace ispn::app
