// Play-back applications (paper §2).
//
// A play-back application buffers arriving packets and replays the signal
// at creation_time + playback_point.  Packets arriving after their
// playback point are useless (late = lost to the application); packets
// arriving earlier are buffered.  Two client types:
//
//   * Rigid: the playback point is fixed to the network's a-priori bound
//     and never moves.
//   * Adaptive: the playback point tracks a high quantile of measured
//     delays plus a margin, re-evaluated every `adapt_interval` packets —
//     gambling that the recent past predicts the near future.
//
// The app reports the loss rate (late fraction), the average lateness
// headroom, and the playback-point history — the "post facto vs a-priori
// bound" comparison at the heart of the paper's argument for predicted
// service.
//
// With attach_clock(), the app additionally models the replay side: a
// persistent timer fires at each buffered packet's playback instant
// (creation + playback point, fixed at arrival), draining the buffer and
// tracking its occupancy — the receiver de-jitter buffer depth the paper's
// §2 playback argument is about.  The timer is re-armed to the earliest
// outstanding playback instant, so a steady stream costs one key insert
// per packet and no allocation.

#pragma once

#include <cstdint>
#include <vector>

#include "app/adaptive.h"
#include "net/host.h"
#include "sim/timer.h"
#include "stats/online_stats.h"
#include "util/dary_heap.h"

namespace ispn::app {

class PlaybackApp final : public net::FlowSink {
 public:
  enum class Mode { kRigid, kAdaptive };

  struct Config {
    Mode mode = Mode::kAdaptive;
    /// Rigid: the fixed playback point (the advertised a-priori bound).
    /// Adaptive: the initial playback point until the estimator primes.
    sim::Duration initial_point = 0.1;
    /// Adaptive: quantile of recent delays to track (e.g. 0.99 for a
    /// target loss rate of 1%).
    double quantile = 0.99;
    /// Adaptive: safety margin added to the quantile (seconds).
    sim::Duration margin = 0.002;
    /// Adaptive: re-evaluate the point every this many packets.
    std::uint64_t adapt_interval = 64;
    /// Adaptive: estimator window (packets).
    std::size_t window = 512;
  };

  explicit PlaybackApp(Config config);

  // Not movable: the replay timer's action captures `this`, so the app
  // must be address-stable once attach_clock() has run.
  PlaybackApp(const PlaybackApp&) = delete;
  PlaybackApp& operator=(const PlaybackApp&) = delete;
  PlaybackApp(PlaybackApp&&) = delete;
  PlaybackApp& operator=(PlaybackApp&&) = delete;

  void on_packet(net::PacketPtr p, sim::Time now) override;

  /// Current playback point (seconds after packet creation).
  [[nodiscard]] sim::Duration playback_point() const { return point_; }

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t late() const { return late_; }

  /// Fraction of received packets that missed the playback point.
  [[nodiscard]] double loss_rate() const;

  /// Mean buffering time of on-time packets (playback point minus delay):
  /// large values mean the point is set too conservatively.
  [[nodiscard]] double mean_slack() const { return slack_.mean(); }

  /// Time-stamped history of playback-point changes (adaptive mode).
  struct PointChange {
    sim::Time at;
    sim::Duration point;
  };
  [[nodiscard]] const std::vector<PointChange>& history() const {
    return history_;
  }

  /// Largest playback point ever used — the adaptive client's de-facto
  /// delay bound.
  [[nodiscard]] sim::Duration max_point() const { return max_point_; }

  /// Enables the replay clock: on-time packets are buffered until their
  /// playback instant and drained by a persistent timer.  Call before the
  /// run; the app must outlive no arm (destroy it before `sim`).
  void attach_clock(sim::Simulator& sim);

  /// Packets currently waiting in the de-jitter buffer / its high-water
  /// mark / total packets replayed (clock-attached mode only).
  [[nodiscard]] std::size_t buffered() const { return deadlines_.size(); }
  [[nodiscard]] std::size_t max_buffered() const { return max_buffered_; }
  [[nodiscard]] std::uint64_t played() const { return played_; }

 private:
  void maybe_adapt(sim::Time now);
  void drain(sim::Time now);

  Config config_;
  DelayQuantileEstimator estimator_;
  sim::Duration point_;
  sim::Duration max_point_;
  std::uint64_t received_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t since_adapt_ = 0;
  stats::OnlineStats slack_;
  std::vector<PointChange> history_;

  // Replay clock (attach_clock).
  sim::Simulator* sim_ = nullptr;
  sim::Timer replay_;  ///< fires at the earliest buffered playback instant
  util::DaryHeap<sim::Time> deadlines_;  ///< outstanding playback instants
  std::size_t max_buffered_ = 0;
  std::uint64_t played_ = 0;
};

}  // namespace ispn::app
