// Play-back applications (paper §2).
//
// A play-back application buffers arriving packets and replays the signal
// at creation_time + playback_point.  Packets arriving after their
// playback point are useless (late = lost to the application); packets
// arriving earlier are buffered.  Two client types:
//
//   * Rigid: the playback point is fixed to the network's a-priori bound
//     and never moves.
//   * Adaptive: the playback point tracks a high quantile of measured
//     delays plus a margin, re-evaluated every `adapt_interval` packets —
//     gambling that the recent past predicts the near future.
//
// The app reports the loss rate (late fraction), the average lateness
// headroom, and the playback-point history — the "post facto vs a-priori
// bound" comparison at the heart of the paper's argument for predicted
// service.

#pragma once

#include <cstdint>
#include <vector>

#include "app/adaptive.h"
#include "net/host.h"
#include "stats/online_stats.h"

namespace ispn::app {

class PlaybackApp final : public net::FlowSink {
 public:
  enum class Mode { kRigid, kAdaptive };

  struct Config {
    Mode mode = Mode::kAdaptive;
    /// Rigid: the fixed playback point (the advertised a-priori bound).
    /// Adaptive: the initial playback point until the estimator primes.
    sim::Duration initial_point = 0.1;
    /// Adaptive: quantile of recent delays to track (e.g. 0.99 for a
    /// target loss rate of 1%).
    double quantile = 0.99;
    /// Adaptive: safety margin added to the quantile (seconds).
    sim::Duration margin = 0.002;
    /// Adaptive: re-evaluate the point every this many packets.
    std::uint64_t adapt_interval = 64;
    /// Adaptive: estimator window (packets).
    std::size_t window = 512;
  };

  explicit PlaybackApp(Config config);

  void on_packet(net::PacketPtr p, sim::Time now) override;

  /// Current playback point (seconds after packet creation).
  [[nodiscard]] sim::Duration playback_point() const { return point_; }

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t late() const { return late_; }

  /// Fraction of received packets that missed the playback point.
  [[nodiscard]] double loss_rate() const;

  /// Mean buffering time of on-time packets (playback point minus delay):
  /// large values mean the point is set too conservatively.
  [[nodiscard]] double mean_slack() const { return slack_.mean(); }

  /// Time-stamped history of playback-point changes (adaptive mode).
  struct PointChange {
    sim::Time at;
    sim::Duration point;
  };
  [[nodiscard]] const std::vector<PointChange>& history() const {
    return history_;
  }

  /// Largest playback point ever used — the adaptive client's de-facto
  /// delay bound.
  [[nodiscard]] sim::Duration max_point() const { return max_point_; }

 private:
  void maybe_adapt(sim::Time now);

  Config config_;
  DelayQuantileEstimator estimator_;
  sim::Duration point_;
  sim::Duration max_point_;
  std::uint64_t received_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t since_adapt_ = 0;
  stats::OnlineStats slack_;
  std::vector<PointChange> history_;
};

}  // namespace ispn::app
