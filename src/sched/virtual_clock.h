// VirtualClock (Zhang '89/'91, the paper's references [25, 26]).
//
// Discussed in §4 as "an extremely similar underlying packet scheduling
// algorithm" to WFQ, designed for preapportioned resources.  Each flow i
// with reserved rate r_i keeps an auxiliary virtual clock auxVC_i; packet
// k of size L arriving at real time a gets
//
//     auxVC_i = max(a, auxVC_i) + L / r_i,    stamp = auxVC_i,
//
// and packets transmit in stamp order.  Unlike WFQ there is no fluid
// virtual time: stamps advance against *real* time, so a flow that was
// idle resumes with a fresh clock, but a flow that overdraws builds stamp
// debt and is pushed behind — rate policing through scheduling.
//
// Per-flow clocks live in a dense vector indexed by flow id and the stamp
// ordering in a flat min-heap of POD keys (packets park in a slab so sifts
// never move a unique_ptr; dequeue only ever needs the minimum).  The
// overflow eviction — largest stamp — is a linear scan of the heap array,
// paid only when the buffer is already full.
//
// Provided for the related-mechanism comparison bench; the CSZ unified
// scheduler uses WFQ.

#pragma once

#include <cstdint>
#include <vector>

#include "sched/keys.h"
#include "sched/packet_slab.h"
#include "sched/scheduler.h"
#include "util/dary_heap.h"
#include "util/slot_map.h"

namespace ispn::sched {

class VirtualClockScheduler final : public Scheduler {
 public:
  struct Config {
    std::size_t capacity_pkts = 200;
    /// Reserved rate assumed for flows never registered via add_flow().
    sim::Rate default_rate = 1e5;
  };

  explicit VirtualClockScheduler(Config config) : config_(config) {}

  /// Reserves rate `rate` (bits/s) for `flow`.
  void add_flow(net::FlowId flow, sim::Rate rate);

  void enqueue(net::PacketPtr p, sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] std::size_t packets() const override { return queue_.size(); }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

  /// Current auxVC of a flow (diagnostic).
  [[nodiscard]] double aux_vc(net::FlowId flow) const;

  /// Dense per-flow slots in use — scales with flows seen, not max(FlowId).
  [[nodiscard]] std::size_t flow_slots() const { return flows_.size(); }

 private:
  // Heap entries are sched::SlabEntry with key = the packet's auxVC stamp;
  // flow ids map to compact dense slots via util::SlotMap.
  struct Flow {
    sim::Rate rate = 0;
    double aux_vc = 0;
  };

  Flow& flow_ref(std::uint32_t idx);

  Config config_;
  util::SlotMap slots_;      // flow id -> compact slot
  std::vector<Flow> flows_;  // dense, indexed by compact slot
  PacketSlab slab_;
  util::DaryHeap<SlabEntry, SlabEntryLess> queue_;
  std::uint64_t arrivals_ = 0;
  sim::Bits bits_ = 0;
};

}  // namespace ispn::sched
