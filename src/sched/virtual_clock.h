// VirtualClock (Zhang '89/'91, the paper's references [25, 26]).
//
// Discussed in §4 as "an extremely similar underlying packet scheduling
// algorithm" to WFQ, designed for preapportioned resources.  Each flow i
// with reserved rate r_i keeps an auxiliary virtual clock auxVC_i; packet
// k of size L arriving at real time a gets
//
//     auxVC_i = max(a, auxVC_i) + L / r_i,    stamp = auxVC_i,
//
// and packets transmit in stamp order.  Unlike WFQ there is no fluid
// virtual time: stamps advance against *real* time, so a flow that was
// idle resumes with a fresh clock, but a flow that overdraws builds stamp
// debt and is pushed behind — rate policing through scheduling.
//
// Provided for the related-mechanism comparison bench; the CSZ unified
// scheduler uses WFQ.

#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "sched/scheduler.h"

namespace ispn::sched {

class VirtualClockScheduler final : public Scheduler {
 public:
  struct Config {
    std::size_t capacity_pkts = 200;
    /// Reserved rate assumed for flows never registered via add_flow().
    sim::Rate default_rate = 1e5;
  };

  explicit VirtualClockScheduler(Config config) : config_(config) {}

  /// Reserves rate `rate` (bits/s) for `flow`.
  void add_flow(net::FlowId flow, sim::Rate rate);

  [[nodiscard]] std::vector<net::PacketPtr> enqueue(net::PacketPtr p,
                                                    sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] std::size_t packets() const override { return queue_.size(); }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

  /// Current auxVC of a flow (diagnostic).
  [[nodiscard]] double aux_vc(net::FlowId flow) const;

 private:
  struct Entry {
    double stamp;
    std::uint64_t order;
    mutable net::PacketPtr packet;
    bool operator<(const Entry& o) const {
      if (stamp != o.stamp) return stamp < o.stamp;
      return order < o.order;
    }
  };
  struct Flow {
    sim::Rate rate;
    double aux_vc = 0;
  };

  Config config_;
  std::map<net::FlowId, Flow> flows_;
  std::set<Entry> queue_;
  std::uint64_t arrivals_ = 0;
  sim::Bits bits_ = 0;
};

}  // namespace ispn::sched
