#include "sched/unified.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace ispn::sched {

UnifiedScheduler::UnifiedScheduler(Config config)
    : config_(config),
      flow0_weight_(config.link_rate),
      clock_(config.link_rate, FluidClock::Flow0Policy::kTracked,
             config.order_backend),
      heads_(config.order_backend),
      flow0_inv_weight_(1.0 / config.link_rate) {
  assert(config_.link_rate > 0);
  assert(config_.num_predicted_classes >= 1);
  classes_.reserve(static_cast<std::size_t>(config_.num_predicted_classes));
  for (int i = 0; i < config_.num_predicted_classes; ++i) {
    classes_.push_back(PredictedClass{{}, stats::Ewma(config_.avg_gain)});
  }
}

void UnifiedScheduler::add_guaranteed(net::FlowId flow, sim::Rate rate) {
  assert(rate > 0);
  assert(flow >= 0 && "guaranteed flow ids must be non-negative");
  const std::uint32_t slot = g_slots_.acquire(flow);
  if (slot >= guaranteed_.size()) guaranteed_.resize(slot + 1);
  GFlow& g = guaranteed_[slot];
  assert(g.rate == 0 && "flow already registered");
  g.rate = rate;
  g.inv_rate = 1.0 / rate;
  g.last_finish = 0;
  guaranteed_rate_ += rate;
  flow0_weight_ = config_.link_rate - guaranteed_rate_;
  assert(flow0_weight_ > 0 &&
         "guaranteed clock rates must leave bandwidth for flow 0");
  flow0_inv_weight_ = 1.0 / flow0_weight_;
  // Dynamic admission: if flow 0 is currently fluid-backlogged its weight
  // contribution must track the new value (the clock's kTracked policy).
  clock_.reweight(kFlow0Heap, flow0_weight_);
}

void UnifiedScheduler::remove_guaranteed(net::FlowId flow) {
  const std::uint32_t slot = find_gslot(flow);
  assert(slot != util::SlotMap::kNoSlot && "flow not registered");
  GFlow& g = guaranteed_[slot];
  assert(g.queue.empty() && "drain the flow before removing it");
  clock_.retire(heap_id(slot));
  guaranteed_rate_ -= g.rate;
  flow0_weight_ = config_.link_rate - guaranteed_rate_;
  flow0_inv_weight_ = 1.0 / flow0_weight_;
  clock_.reweight(kFlow0Heap, flow0_weight_);
  g.rate = 0;
  g.inv_rate = 0;
  g.last_finish = 0;
  // Recycle the slot; its Ring keeps its capacity for the next tenant, so
  // churn over a bounded flow population allocates nothing.
  g_slots_.release(flow);
}

void UnifiedScheduler::expel_guaranteed(
    net::FlowId flow, sim::Time now,
    const std::function<void(net::PacketPtr, sim::Time)>& sink) {
  clock_.advance(now);
  const std::uint32_t slot = find_gslot(flow);
  assert(slot != util::SlotMap::kNoSlot && "flow not registered");
  GFlow& g = guaranteed_[slot];
  while (!g.queue.empty()) {
    Tagged head = g.queue.pop_front();
    bits_ -= head.packet->size_bits;
    --total_packets_;
    sink(std::move(head.packet), now);
  }
  heads_.erase(heap_id(slot));
  remove_guaranteed(flow);
}

void UnifiedScheduler::flush(
    const std::function<void(net::PacketPtr, sim::Time)>& sink,
    sim::Time now) {
  flushing_ = true;
  Scheduler::flush(sink, now);
  flushing_ = false;
}

void UnifiedScheduler::set_link_rate(sim::Rate rate, sim::Time now) {
  assert(rate > 0);
  assert(rate > guaranteed_rate_ &&
         "shed guaranteed flows before re-rating below their reserved sum");
  // Advance V(t) to the change instant under the OLD rate, so the slope
  // change is exact rather than retroactive.
  clock_.advance(now);
  config_.link_rate = rate;
  clock_.set_link_rate(rate);
  flow0_weight_ = rate - guaranteed_rate_;
  flow0_inv_weight_ = 1.0 / flow0_weight_;
  clock_.reweight(kFlow0Heap, flow0_weight_);
}

bool UnifiedScheduler::self_check(std::string* why) const {
  auto fail = [why](const char* what) {
    if (why != nullptr) *why = what;
    return false;
  };
  std::size_t flow0_pkts = datagram_.size();
  for (const auto& cls : classes_) flow0_pkts += cls.queue.size();
  std::size_t queued = flow0_pkts;
  sim::Rate reserved = 0;
  for (const auto& g : guaranteed_) {
    queued += g.queue.size();
    reserved += g.rate;
  }
  if (queued != total_packets_) {
    return fail("queued packet sum disagrees with total_packets");
  }
  if (flow0_tags_.size() != flow0_pkts) {
    return fail("flow-0 tag count disagrees with flow-0 packet count");
  }
  // Floating sums drift one ulp per churn event; scale tolerance to mu.
  if (std::abs(reserved - guaranteed_rate_) > 1e-6 * config_.link_rate) {
    return fail("guaranteed_rate disagrees with registered clock rates");
  }
  if (std::abs((config_.link_rate - guaranteed_rate_) - flow0_weight_) >
      1e-6 * config_.link_rate) {
    return fail("flow-0 weight disagrees with mu - sum(r_alpha)");
  }
  if (flow0_weight_ <= 0) return fail("flow-0 weight is non-positive");
  return true;
}

void UnifiedScheduler::set_predicted_priority(net::FlowId flow, int level) {
  // Hierarchical mode keeps zero per-flow predicted state: the class is
  // whatever the packet carries in (service, priority).
  if (config_.hierarchical) return;
  assert(level >= 0 && level < config_.num_predicted_classes);
  assert(flow >= 0 && "predicted flow ids must be non-negative");
  const std::uint32_t slot = p_slots_.acquire(flow);
  if (slot >= predicted_priority_.size()) {
    predicted_priority_.resize(slot + 1, kNoLevel);
  }
  predicted_priority_[slot] = static_cast<std::int16_t>(level);
}

int UnifiedScheduler::classify(const net::Packet& p) const {
  const int kDatagramLevel = config_.num_predicted_classes;
  if (p.service == net::ServiceClass::kDatagram) return kDatagramLevel;
  if (!config_.hierarchical) {
    const std::uint32_t slot = p_slots_.find(p.flow);
    if (slot != util::SlotMap::kNoSlot &&
        predicted_priority_[slot] != kNoLevel) {
      return predicted_priority_[slot];
    }
  }
  if (p.service == net::ServiceClass::kPredicted) {
    return std::min<int>(p.priority, config_.num_predicted_classes - 1);
  }
  return kDatagramLevel;  // unregistered, unclassed traffic is best effort
}

double UnifiedScheduler::virtual_time(sim::Time now) {
  clock_.advance(now);
  return clock_.vtime();
}

std::size_t UnifiedScheduler::class_packets(int level) const {
  if (level == config_.num_predicted_classes) return datagram_.size();
  return classes_.at(static_cast<std::size_t>(level)).queue.size();
}

void UnifiedScheduler::enqueue(net::PacketPtr p, sim::Time now) {
  clock_.advance(now);

  const std::uint32_t gslot = p->service == net::ServiceClass::kGuaranteed
                                  ? find_gslot(p->flow)
                                  : util::SlotMap::kNoSlot;
  GFlow* g = gslot != util::SlotMap::kNoSlot ? &guaranteed_[gslot] : nullptr;

  const sim::Bits size = p->size_bits;
  const std::uint64_t order = arrivals_++;

  if (g != nullptr) {
    const double finish = clock_.stamp(heap_id(gslot), g->last_finish, size,
                                       g->rate, g->inv_rate);
    g->last_finish = finish;
    if (g->queue.empty()) {
      heads_.upsert(heap_id(gslot), HeadKey{finish, order});
    }
    g->queue.push_back(Tagged{std::move(p), finish, order});
  } else {
    // Flow 0: one tag per packet, in arrival order; the packet itself goes
    // into its class queue.
    const double finish = clock_.stamp(kFlow0Heap, flow0_last_finish_, size,
                                       flow0_weight_, flow0_inv_weight_);
    flow0_last_finish_ = finish;
    if (flow0_tags_.empty()) {
      heads_.upsert(kFlow0Heap, HeadKey{finish, order});
    }
    flow0_tags_.push_back({finish, order});

    const int level = classify(*p);
    if (level == config_.num_predicted_classes) {
      if (config_.binary_feedback) {
        // DEC-TR-506 sampling instant: this arrival compares the cycle's
        // time-averaged datagram queue length (excluding itself) to the
        // threshold and carries the verdict as its congestion mark.
        dg_account(now);
        const double elapsed = now - dg_cycle_start_;
        const double avg = elapsed > 0
                               ? dg_area_ / elapsed
                               : static_cast<double>(datagram_.size());
        ++mark_samples_;
        if (avg >= config_.mark_threshold) {
          p->cong_mark = true;
          ++cong_marks_;
        }
      }
      datagram_.push_back(std::move(p));
    } else {
      auto& cls = classes_[static_cast<std::size_t>(level)];
      const double expected = p->enqueued_at - p->jitter_offset;
      cls.queue.push(SlabEntry{expected, order, slab_.put(std::move(p))});
    }
  }

  ++total_packets_;
  bits_ += size;

  if (total_packets_ > config_.capacity_pkts) {
    net::PacketPtr victim = pushout_flow0(now);
    if (victim != nullptr) {
      drop(std::move(victim), now);
    } else if (g != nullptr) {
      // Pathological: buffer full of guaranteed packets.  Drop the newest
      // packet of the arriving flow (i.e. the arrival itself).
      Tagged last = g->queue.pop_back();
      if (g->queue.empty()) heads_.erase(heap_id(gslot));
      bits_ -= last.packet->size_bits;
      --total_packets_;
      drop(std::move(last.packet), now);
    }
  }
}

net::PacketPtr UnifiedScheduler::pushout_flow0(sim::Time now) {
  net::PacketPtr victim;
  if (!datagram_.empty()) {
    // Prefer the newest less-important datagram packet (§10), else the
    // newest outright.
    std::size_t chosen = datagram_.size() - 1;
    for (std::size_t i = datagram_.size(); i-- > 0;) {
      if (datagram_[i]->less_important) {
        chosen = i;
        break;
      }
    }
    if (config_.binary_feedback) dg_account(now);
    victim = datagram_.erase_at(chosen);
    if (config_.binary_feedback && datagram_.empty()) dg_reset_cycle(now);
  } else {
    for (int level = config_.num_predicted_classes - 1; level >= 0; --level) {
      auto& cls = classes_[static_cast<std::size_t>(level)];
      if (cls.queue.empty()) continue;
      // Newest less-important packet first (§10 drop preference), falling
      // back to the newest packet of the class.  The heap array is scanned
      // linearly — overflow is the cold path.
      const auto& raw = cls.queue.raw();
      const SlabEntryLess less{};
      std::size_t newest = 0;
      std::size_t chosen = raw.size();  // npos
      for (std::size_t i = 0; i < raw.size(); ++i) {
        if (less(raw[newest], raw[i])) newest = i;
        if (slab_.peek(raw[i].slot).less_important &&
            (chosen == raw.size() || less(raw[chosen], raw[i]))) {
          chosen = i;
        }
      }
      victim = slab_.take(
          cls.queue.remove_at(chosen == raw.size() ? newest : chosen).slot);
      break;
    }
  }
  if (victim == nullptr) return nullptr;

  // Retire the *newest* tag: flow 0 keeps its earlier transmission
  // entitlements (conservative for guaranteed flows, which see flow 0 as
  // at-most-this-busy).
  assert(!flow0_tags_.empty());
  flow0_tags_.pop_back();
  if (flow0_tags_.empty()) heads_.erase(kFlow0Heap);

  bits_ -= victim->size_bits;
  --total_packets_;
  return victim;
}

void UnifiedScheduler::retire_tag_for_discard() {
  // Called mid-dequeue: the heads_ entry is already gone, so only the tag
  // queue needs adjusting.  The discarded packet's entitlement is retired
  // from the back (latest finish tag), conservatively.  When the discard
  // is the last flow-0 packet, the front tag popped at the start of the
  // dequeue already covers it.
  if (!flow0_tags_.empty()) flow0_tags_.pop_back();
}

net::PacketPtr UnifiedScheduler::pop_flow0(sim::Time now) {
  for (int level = 0; level < config_.num_predicted_classes; ++level) {
    auto& cls = classes_[static_cast<std::size_t>(level)];
    while (!cls.queue.empty()) {
      net::PacketPtr p = slab_.take(cls.queue.pop().slot);
      // §10 stale discard: the offset says this packet is already far
      // behind its class's average service; drop it and serve the next.
      // Suppressed during a flush — the flush sink owns every packet.
      if (!flushing_ && p->jitter_offset > config_.stale_offset_threshold) {
        ++stale_discards_;
        bits_ -= p->size_bits;
        --total_packets_;
        retire_tag_for_discard();
        if (discard_hook_) discard_hook_(*p, now);
        // A stale discard is a loss like any other: report it through the
        // DropSink so Port::drops() and the per-flow stats stay complete
        // at merge points (they used to see enqueue-time drops only).
        drop(std::move(p), now);
        continue;
      }
      const sim::Duration wait = now - p->enqueued_at;
      if (config_.fifo_plus && !flushing_) {
        const double avg = cls.avg.update(wait);
        p->jitter_offset += wait - avg;
      }
      if (observer_ && !flushing_) observer_(level, wait, now);
      return p;
    }
  }
  if (!datagram_.empty()) {
    if (config_.binary_feedback) dg_account(now);
    net::PacketPtr p = datagram_.pop_front();
    if (config_.binary_feedback && datagram_.empty()) dg_reset_cycle(now);
    if (observer_ && !flushing_) {
      observer_(config_.num_predicted_classes, now - p->enqueued_at, now);
    }
    return p;
  }
  return nullptr;
}

net::PacketPtr UnifiedScheduler::dequeue(sim::Time now) {
  if (total_packets_ == 0) return nullptr;
  clock_.advance(now);

  while (!heads_.empty()) {
    const auto entry = heads_.pop();

    if (entry.id == kFlow0Heap) {
      assert(!flow0_tags_.empty() &&
             flow0_tags_.front().second == entry.key.order);
      flow0_tags_.pop_front();
      net::PacketPtr p = pop_flow0(now);
      if (p == nullptr) {
        // Every flow-0 packet was discarded as stale; tag accounting has
        // been settled by retire_tag_for_discard().  Try the next head.
        assert(flow0_tags_.empty());
        continue;
      }
      if (!flow0_tags_.empty()) {
        heads_.upsert(kFlow0Heap, HeadKey{flow0_tags_.front().first,
                                          flow0_tags_.front().second});
      }
      bits_ -= p->size_bits;
      --total_packets_;
      return p;
    }

    GFlow& g = guaranteed_[entry.id - 1];
    assert(!g.queue.empty());
    Tagged head = g.queue.pop_front();
    if (!g.queue.empty()) {
      const Tagged& next = g.queue.front();
      heads_.upsert(entry.id, HeadKey{next.finish, next.order});
    }
    bits_ -= head.packet->size_bits;
    --total_packets_;
    return std::move(head.packet);
  }
  return nullptr;  // everything queued was discarded as stale
}

}  // namespace ispn::sched
