#include "sched/unified.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::sched {

UnifiedScheduler::UnifiedScheduler(Config config)
    : config_(config), flow0_weight_(config.link_rate) {
  assert(config_.link_rate > 0);
  assert(config_.num_predicted_classes >= 1);
  classes_.reserve(static_cast<std::size_t>(config_.num_predicted_classes));
  for (int i = 0; i < config_.num_predicted_classes; ++i) {
    classes_.push_back(PredictedClass{{}, stats::Ewma(config_.avg_gain)});
  }
}

void UnifiedScheduler::add_guaranteed(net::FlowId flow, sim::Rate rate) {
  assert(rate > 0);
  auto [it, inserted] = guaranteed_.try_emplace(flow);
  assert(inserted && "flow already registered");
  it->second.rate = rate;
  guaranteed_rate_ += rate;
  const sim::Rate old_flow0 = flow0_weight_;
  flow0_weight_ = config_.link_rate - guaranteed_rate_;
  assert(flow0_weight_ > 0 &&
         "guaranteed clock rates must leave bandwidth for flow 0");
  // Dynamic admission: if flow 0 is currently fluid-backlogged its weight
  // contribution must track the new value.
  if (flow0_fluid_backlogged_) active_weight_ += flow0_weight_ - old_flow0;
}

void UnifiedScheduler::remove_guaranteed(net::FlowId flow) {
  auto it = guaranteed_.find(flow);
  assert(it != guaranteed_.end() && "flow not registered");
  GFlow& g = it->second;
  assert(g.queue.empty() && "drain the flow before removing it");
  if (g.fluid_backlogged) {
    fluid_.erase({g.last_finish, flow});
    active_weight_ -= g.rate;
  }
  guaranteed_rate_ -= g.rate;
  const sim::Rate old_flow0 = flow0_weight_;
  flow0_weight_ = config_.link_rate - guaranteed_rate_;
  if (flow0_fluid_backlogged_) active_weight_ += flow0_weight_ - old_flow0;
  guaranteed_.erase(it);
}

void UnifiedScheduler::set_predicted_priority(net::FlowId flow, int level) {
  assert(level >= 0 && level < config_.num_predicted_classes);
  predicted_priority_[flow] = level;
}

int UnifiedScheduler::classify(const net::Packet& p) const {
  const int kDatagramLevel = config_.num_predicted_classes;
  if (p.service == net::ServiceClass::kDatagram) return kDatagramLevel;
  if (auto it = predicted_priority_.find(p.flow);
      it != predicted_priority_.end()) {
    return it->second;
  }
  if (p.service == net::ServiceClass::kPredicted) {
    return std::min<int>(p.priority, config_.num_predicted_classes - 1);
  }
  return kDatagramLevel;  // unregistered, unclassed traffic is best effort
}

void UnifiedScheduler::advance_virtual_time(sim::Time now) {
  while (last_update_ < now) {
    if (fluid_.empty()) {
      last_update_ = now;
      return;
    }
    assert(active_weight_ > 0);
    const double slope = config_.link_rate / active_weight_;
    const double next_finish = fluid_.begin()->first;
    const sim::Time reach = last_update_ + (next_finish - vtime_) / slope;
    if (reach <= now) {
      vtime_ = next_finish;
      last_update_ = reach;
      while (!fluid_.empty() && fluid_.begin()->first <= vtime_) {
        const net::FlowId id = fluid_.begin()->second;
        if (id == kFlow0) {
          flow0_fluid_backlogged_ = false;
          active_weight_ -= flow0_weight_;
        } else {
          GFlow& g = guaranteed_.at(id);
          g.fluid_backlogged = false;
          active_weight_ -= g.rate;
        }
        fluid_.erase(fluid_.begin());
      }
      if (fluid_.empty()) active_weight_ = 0;  // absorb fp residue
    } else {
      vtime_ += slope * (now - last_update_);
      last_update_ = now;
    }
  }
}

double UnifiedScheduler::virtual_time(sim::Time now) {
  advance_virtual_time(now);
  return vtime_;
}

std::size_t UnifiedScheduler::class_packets(int level) const {
  if (level == config_.num_predicted_classes) return datagram_.size();
  return classes_.at(static_cast<std::size_t>(level)).queue.size();
}

std::vector<net::PacketPtr> UnifiedScheduler::enqueue(net::PacketPtr p,
                                                      sim::Time now) {
  std::vector<net::PacketPtr> dropped;
  advance_virtual_time(now);

  const net::FlowId id = p->flow;
  auto git = p->service == net::ServiceClass::kGuaranteed
                 ? guaranteed_.find(id)
                 : guaranteed_.end();

  const sim::Bits size = p->size_bits;
  const std::uint64_t order = arrivals_++;

  if (git != guaranteed_.end()) {
    GFlow& g = git->second;
    const double start = std::max(vtime_, g.last_finish);
    const double finish = start + size / g.rate;
    if (g.fluid_backlogged) {
      fluid_.erase({g.last_finish, id});
    } else {
      g.fluid_backlogged = true;
      active_weight_ += g.rate;
    }
    g.last_finish = finish;
    fluid_.insert({finish, id});
    if (g.queue.empty()) heads_.insert({finish, order, id});
    g.queue.push_back(Tagged{std::move(p), finish, order});
  } else {
    // Flow 0: one tag per packet, in arrival order; the packet itself goes
    // into its class queue.
    const double start = std::max(vtime_, flow0_last_finish_);
    const double finish = start + size / flow0_weight_;
    if (flow0_fluid_backlogged_) {
      fluid_.erase({flow0_last_finish_, kFlow0});
    } else {
      flow0_fluid_backlogged_ = true;
      active_weight_ += flow0_weight_;
    }
    flow0_last_finish_ = finish;
    fluid_.insert({finish, kFlow0});
    if (flow0_tags_.empty()) heads_.insert({finish, order, kFlow0});
    flow0_tags_.emplace_back(finish, order);

    const int level = classify(*p);
    if (level == config_.num_predicted_classes) {
      datagram_.push_back(std::move(p));
    } else {
      auto& cls = classes_[static_cast<std::size_t>(level)];
      cls.queue.insert(PredictedClass::Entry{
          p->enqueued_at - p->jitter_offset, order, std::move(p)});
    }
  }

  ++total_packets_;
  bits_ += size;

  if (total_packets_ > config_.capacity_pkts) {
    net::PacketPtr victim = pushout_flow0();
    if (victim != nullptr) {
      dropped.push_back(std::move(victim));
    } else if (git != guaranteed_.end()) {
      // Pathological: buffer full of guaranteed packets.  Drop the newest
      // packet of the arriving flow (i.e. the arrival itself).
      GFlow& g = git->second;
      Tagged last = std::move(g.queue.back());
      g.queue.pop_back();
      if (g.queue.empty()) {
        heads_.erase({last.finish, last.order, id});
      }
      bits_ -= last.packet->size_bits;
      --total_packets_;
      dropped.push_back(std::move(last.packet));
    }
  }
  return dropped;
}

net::PacketPtr UnifiedScheduler::pushout_flow0() {
  net::PacketPtr victim;
  if (!datagram_.empty()) {
    // Prefer the newest less-important datagram packet (§10), else the
    // newest outright.
    auto it = datagram_.rbegin();
    for (auto cand = datagram_.rbegin(); cand != datagram_.rend(); ++cand) {
      if ((*cand)->less_important) {
        it = cand;
        break;
      }
    }
    victim = std::move(*it);
    datagram_.erase(std::next(it).base());
  } else {
    for (int level = config_.num_predicted_classes - 1; level >= 0; --level) {
      auto& cls = classes_[static_cast<std::size_t>(level)];
      if (cls.queue.empty()) continue;
      // Newest less-important packet first (§10 drop preference), falling
      // back to the newest packet of the class.
      auto chosen = std::prev(cls.queue.end());
      for (auto cand = cls.queue.rbegin(); cand != cls.queue.rend(); ++cand) {
        if (cand->packet->less_important) {
          chosen = std::prev(cand.base());
          break;
        }
      }
      victim = std::move(chosen->packet);
      cls.queue.erase(chosen);
      break;
    }
  }
  if (victim == nullptr) return nullptr;

  // Retire the *newest* tag: flow 0 keeps its earlier transmission
  // entitlements (conservative for guaranteed flows, which see flow 0 as
  // at-most-this-busy).
  assert(!flow0_tags_.empty());
  if (flow0_tags_.size() == 1) {
    heads_.erase({flow0_tags_.front().first, flow0_tags_.front().second,
                  kFlow0});
  }
  flow0_tags_.pop_back();

  bits_ -= victim->size_bits;
  --total_packets_;
  return victim;
}

void UnifiedScheduler::retire_tag_for_discard() {
  // Called mid-dequeue: the heads_ entry is already gone, so only the tag
  // deque needs adjusting.  The discarded packet's entitlement is retired
  // from the back (latest finish tag), conservatively.  When the discard
  // is the last flow-0 packet, the front tag popped at the start of the
  // dequeue already covers it.
  if (!flow0_tags_.empty()) flow0_tags_.pop_back();
}

net::PacketPtr UnifiedScheduler::pop_flow0(sim::Time now) {
  for (int level = 0; level < config_.num_predicted_classes; ++level) {
    auto& cls = classes_[static_cast<std::size_t>(level)];
    while (!cls.queue.empty()) {
      auto it = cls.queue.begin();
      net::PacketPtr p = std::move(it->packet);
      cls.queue.erase(it);
      // §10 stale discard: the offset says this packet is already far
      // behind its class's average service; drop it and serve the next.
      if (p->jitter_offset > config_.stale_offset_threshold) {
        ++stale_discards_;
        bits_ -= p->size_bits;
        --total_packets_;
        retire_tag_for_discard();
        if (discard_hook_) discard_hook_(*p, now);
        continue;
      }
      const sim::Duration wait = now - p->enqueued_at;
      if (config_.fifo_plus) {
        const double avg = cls.avg.update(wait);
        p->jitter_offset += wait - avg;
      }
      if (observer_) observer_(level, wait, now);
      return p;
    }
  }
  if (!datagram_.empty()) {
    net::PacketPtr p = std::move(datagram_.front());
    datagram_.pop_front();
    if (observer_) {
      observer_(config_.num_predicted_classes, now - p->enqueued_at, now);
    }
    return p;
  }
  return nullptr;
}

net::PacketPtr UnifiedScheduler::dequeue(sim::Time now) {
  if (total_packets_ == 0) return nullptr;
  advance_virtual_time(now);

  while (!heads_.empty()) {
    const auto [finish, order, id] = *heads_.begin();
    heads_.erase(heads_.begin());

    if (id == kFlow0) {
      assert(!flow0_tags_.empty());
      flow0_tags_.pop_front();
      net::PacketPtr p = pop_flow0(now);
      if (p == nullptr) {
        // Every flow-0 packet was discarded as stale; tag accounting has
        // been settled by retire_tag_for_discard().  Try the next head.
        assert(flow0_tags_.empty());
        continue;
      }
      if (!flow0_tags_.empty()) {
        heads_.insert(
            {flow0_tags_.front().first, flow0_tags_.front().second, kFlow0});
      }
      bits_ -= p->size_bits;
      --total_packets_;
      return p;
    }

    GFlow& g = guaranteed_.at(id);
    assert(!g.queue.empty());
    Tagged head = std::move(g.queue.front());
    g.queue.pop_front();
    if (!g.queue.empty()) {
      const Tagged& next = g.queue.front();
      heads_.insert({next.finish, next.order, id});
    }
    bits_ -= head.packet->size_bits;
    --total_packets_;
    return std::move(head.packet);
  }
  return nullptr;  // everything queued was discarded as stale
}

}  // namespace ispn::sched
