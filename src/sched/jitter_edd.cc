#include "sched/jitter_edd.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::sched {

void JitterEddScheduler::set_bound(net::FlowId flow, sim::Duration bound) {
  assert(bound > 0);
  bounds_[flow] = bound;
}

sim::Duration JitterEddScheduler::bound(net::FlowId flow) const {
  auto it = bounds_.find(flow);
  return it == bounds_.end() ? config_.default_bound : it->second;
}

void JitterEddScheduler::enqueue(net::PacketPtr p, sim::Time now) {
  if (packets() >= config_.capacity_pkts) {
    drop(std::move(p), now);
    return;
  }
  const double ahead = std::max(0.0, p->jitter_offset);
  const double eligible = now + ahead;
  const double deadline = eligible + bound(p->flow);
  bits_ += p->size_bits;
  const std::uint64_t order = arrivals_++;
  if (eligible <= now) {
    ready_.insert(Entry{deadline, deadline, order, std::move(p)});
  } else {
    holding_.insert(Entry{eligible, deadline, order, std::move(p)});
  }
}

void JitterEddScheduler::promote(sim::Time now) {
  while (!holding_.empty() && holding_.begin()->key <= now) {
    auto it = holding_.begin();
    ready_.insert(
        Entry{it->deadline, it->deadline, it->order, std::move(it->packet)});
    holding_.erase(it);
  }
}

sim::Time JitterEddScheduler::next_eligible(sim::Time now) const {
  if (!ready_.empty()) return now;
  if (!holding_.empty()) {
    // Anything already past its eligibility counts as eligible now.
    return std::max(now, holding_.begin()->key);
  }
  return now;
}

net::PacketPtr JitterEddScheduler::dequeue(sim::Time now) {
  promote(now);
  if (ready_.empty()) return nullptr;  // everything still held
  auto it = ready_.begin();
  net::PacketPtr p = std::move(it->packet);
  const double deadline = it->deadline;
  ready_.erase(it);
  bits_ -= p->size_bits;
  // Stamp how far ahead of the local deadline the packet departs; the
  // next switch holds it by exactly this much.
  p->jitter_offset = std::max(0.0, deadline - now);
  return p;
}

}  // namespace ispn::sched
