// The unified CSZ scheduling algorithm (paper §7).
//
// Structure at each output port:
//
//   WFQ (exact GPS virtual time)
//    ├── guaranteed flow α1, clock rate r_α1        (isolation)
//    ├── guaranteed flow α2, clock rate r_α2
//    ├── ...
//    └── pseudo-flow 0,  rate  r_0 = μ − Σ r_α      (sharing world)
//         ├── priority level 0  : FIFO+             (Predicted, tightest D)
//         ├── ...
//         ├── priority level K−1: FIFO+             (Predicted, loosest D)
//         └── datagram level    : FIFO              (best effort)
//
// WFQ tags decide *when* flow 0 may transmit; the internal priority/FIFO+
// structure decides *which* flow-0 packet goes.  Guaranteed flows' own tags
// attach to their packets exactly as in WfqScheduler.
//
// Buffer policy (DESIGN.md §4): the port buffer (200 packets) is shared;
// when it overflows, the victim is pushed out of the lowest-priority
// backlogged class (datagram first), never a guaranteed queue unless only
// guaranteed packets remain.  The paper reports guaranteed bounds holding
// while datagram TCP load suffers ~0.1% drops, which entails protecting
// real-time queues from elastic overload.
//
// Hot-path layout mirrors WfqScheduler: guaranteed per-flow state and the
// predicted-priority map are dense vectors indexed by compact slots
// (util::SlotMap remaps flow ids to the lowest free slot on first sight,
// so per-link memory scales with registered flows, never max(FlowId)),
// per-flow FIFOs are power-of-two rings, and the fluid ordering (inside
// the shared sched::FluidClock) and head ordering are indexed min-heaps
// holding exactly one re-keyable entry per flow (heap id 0 is the flow-0
// pseudo-flow, the guaranteed flow in slot s maps to id s+1, preserving
// the tie-break that flow 0 wins equal finish tags).  Flow 0's weight is
// μ − Σ r_α and changes in place when guaranteed flows are admitted or
// torn down — the clock's kTracked flow-0 policy.  FIFO+ class queues are
// flat heaps of POD keys with packets parked in a slab.
//
// Ties at equal finish tags order flow 0 first, then guaranteed flows by
// slot (first-registration order — itself deterministic, since flow
// registration sequences are byte-identical across backends).
//
// Hierarchical mode (Config::hierarchical): the scheduler keeps NO
// per-flow state for predicted or datagram traffic — packets carry their
// class in (service, priority) as stamped at the edge, and the inner
// scheduler sees only the bounded aggregate set {guaranteed flows,
// K predicted classes, datagram}.  set_predicted_priority /
// remove_predicted become no-ops, so per-flow predicted state shrinks to
// the edge's policing + stats record.  The semantic difference from the
// flat path: per-hop class reassignment (a different priority at each
// hop) is not available — every hop classifies by the packet's stamped
// priority.  Flat mode stays the default and byte-identical.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/fluid_clock.h"
#include "sched/keys.h"
#include "sched/packet_slab.h"
#include "sched/scheduler.h"
#include "stats/ewma.h"
#include "util/dary_heap.h"
#include "util/indexed_heap.h"
#include "util/ring.h"
#include "util/slot_map.h"

namespace ispn::sched {

class UnifiedScheduler final : public Scheduler {
 public:
  struct Config {
    sim::Rate link_rate = sim::paper::kLinkRate;
    std::size_t capacity_pkts = 200;
    /// Number of predicted-service priority classes (K).  The datagram
    /// class sits below them at level K.
    int num_predicted_classes = 2;
    /// EWMA gain of the per-class average-delay estimate used by FIFO+.
    double avg_gain = 1.0 / 4096.0;
    /// When false, predicted classes run plain FIFO (ablation switch).
    bool fifo_plus = true;
    /// §10 stale-packet discard: a predicted packet whose accumulated
    /// jitter offset exceeds this threshold (seconds) is discarded at
    /// dequeue instead of transmitted — it has already missed any playback
    /// point it could have met, so its bandwidth is better spent on the
    /// packets behind it.  Infinity disables the feature (default).
    sim::Duration stale_offset_threshold = sim::kTimeInfinity;
    /// Ordering structure for the fluid epochs and head finish tags; every
    /// backend departs packets in the identical order.
    OrderBackend order_backend = OrderBackend::kAuto;
    /// Two-level aggregate mode: no per-flow predicted state — packets are
    /// classified purely by their stamped (service, priority), and the
    /// scheduler's state is bounded by {guaranteed flows, K classes,
    /// datagram} regardless of flow count.  See the header comment for the
    /// per-hop-reassignment semantic this trades away.  Default off: the
    /// classic flat path, byte-identical to previous releases.
    bool hierarchical = false;
    /// DEC-TR-506 binary feedback on the datagram class: each datagram
    /// arrival samples the time-averaged datagram queue length over the
    /// current regeneration cycle (cycle restarts when the queue empties)
    /// and sets Packet::cong_mark when the average is at or above
    /// mark_threshold.  Default off: the datagram path is untouched.
    bool binary_feedback = false;
    /// Average-queue-length threshold (packets) for marking.  DEC-TR-506
    /// operates the switch at an average of one queued packet.
    double mark_threshold = 1.0;
  };

  /// Observer invoked at each predicted/datagram dequeue with
  /// (class index — num_predicted_classes for datagram, waiting time, now).
  /// Used by the admission controller's measurement module (d̂_j).
  using WaitObserver = std::function<void(int, sim::Duration, sim::Time)>;

  explicit UnifiedScheduler(Config config);

  /// Registers a guaranteed flow with clock rate `rate` (bits/s).  The
  /// pseudo-flow 0 weight shrinks accordingly.  Precondition: the sum of
  /// guaranteed rates stays below the link rate.
  void add_guaranteed(net::FlowId flow, sim::Rate rate);

  /// Deregisters a guaranteed flow (service teardown).  The flow's queue
  /// must be drained first; flow 0 recovers the clock rate.
  void remove_guaranteed(net::FlowId flow);

  /// Forced teardown for rerouting: hands every queued packet of the flow
  /// to `sink` (the caller accounts them as failed_link_drops), then
  /// deregisters it as remove_guaranteed() would.  Unlike the graceful
  /// path there is no drained-queue precondition — the flow's path no
  /// longer crosses this link, so waiting for a drain would strand the
  /// reserved clock rate.
  void expel_guaranteed(net::FlowId flow, sim::Time now,
                        const std::function<void(net::PacketPtr, sim::Time)>&
                            sink);

  /// Assigns a predicted flow to priority level in [0, K).  Unregistered,
  /// non-guaranteed flows go to the datagram level.
  void set_predicted_priority(net::FlowId flow, int level);

  /// Forgets a predicted flow's priority mapping (service teardown);
  /// in-flight packets keep their class.  The flow's compact slot is
  /// recycled.  No-op in hierarchical mode (nothing was kept).
  void remove_predicted(net::FlowId flow) {
    const std::uint32_t slot = p_slots_.find(flow);
    if (slot != util::SlotMap::kNoSlot) {
      predicted_priority_[slot] = kNoLevel;
      p_slots_.release(flow);
    }
  }

  void set_wait_observer(WaitObserver obs) { observer_ = std::move(obs); }

  /// Observer invoked specifically for §10 stale discards, just before the
  /// victim is also reported to the DropSink.  Loss *accounting* needs no
  /// hook — stale discards already reach Port::drops() and the per-flow
  /// stats through the sink like every other loss; wiring this hook into
  /// the same counters would double-count.  It exists for observers that
  /// want to distinguish discards from other drops (tests, diagnostics).
  using DiscardHook = std::function<void(const net::Packet&, sim::Time)>;
  void set_discard_hook(DiscardHook hook) { discard_hook_ = std::move(hook); }

  /// Packets discarded as stale so far (§10).
  [[nodiscard]] std::uint64_t stale_discards() const {
    return stale_discards_;
  }

  /// Datagram packets stamped with a congestion mark (binary feedback).
  [[nodiscard]] std::uint64_t cong_marks() const { return cong_marks_; }
  /// Datagram arrivals that sampled the average queue length.
  [[nodiscard]] std::uint64_t mark_samples() const { return mark_samples_; }
  /// The time-averaged datagram queue length over the current regeneration
  /// cycle, evaluated at `now` (what the next arrival would compare to the
  /// threshold).  Exposed for the marking-rule unit pins.
  [[nodiscard]] double datagram_avg_queue(sim::Time now) const {
    const double area = dg_area_ + static_cast<double>(datagram_.size()) *
                                       (now - dg_last_change_);
    const double elapsed = now - dg_cycle_start_;
    return elapsed > 0 ? area / elapsed
                       : static_cast<double>(datagram_.size());
  }

  /// Re-rates the link (capacity brown-out / restore): V(t) advances to
  /// `now` under the old rate, then the new μ applies — flow 0's weight
  /// becomes μ' − Σ r_α and the fluid slope changes from this instant.
  /// Precondition: the admission layer has already shed guaranteed flows
  /// until Σ r_α < rate (a brown-out below the reserved sum without
  /// shedding would leave flow 0 with non-positive weight).
  void set_link_rate(sim::Rate rate, sim::Time now);

  /// The link rate the scheduler currently serves at.
  [[nodiscard]] sim::Rate link_rate() const { return config_.link_rate; }

  /// Structural coherence audit for the runtime invariant monitor: packet
  /// counts across the guaranteed queues, class queues, datagram ring and
  /// flow-0 tag queue must agree with the totals, and flow 0's weight
  /// must equal μ − Σ r_α and stay positive.  Returns false and fills
  /// `why` (when non-null) on the first violation.  Call between events
  /// only (mid-dequeue the tag queue is transiently inconsistent).
  [[nodiscard]] bool self_check(std::string* why) const;

  /// Pseudo-flow 0's current WFQ weight (μ − Σ r_α).  Exposed for tests.
  [[nodiscard]] sim::Rate flow0_weight() const { return flow0_weight_; }

  /// Sum of registered guaranteed clock rates.
  [[nodiscard]] sim::Rate guaranteed_rate() const { return guaranteed_rate_; }

  /// Current virtual time, advanced to `now` (diagnostic).
  [[nodiscard]] double virtual_time(sim::Time now);

  /// Queued packets in a predicted class / datagram level (diagnostic).
  [[nodiscard]] std::size_t class_packets(int level) const;

  /// Queued packets of a guaranteed flow (0 when not registered) — a
  /// teardown diagnostic: remove_guaranteed() requires a drained queue.
  /// Note this sees only THIS hop's queue; end-to-end drain checks should
  /// compare the flow's injected/delivered/dropped ledger instead.
  [[nodiscard]] std::size_t guaranteed_packets(net::FlowId flow) const {
    const std::uint32_t slot = g_slots_.find(flow);
    return slot != util::SlotMap::kNoSlot ? guaranteed_[slot].queue.size() : 0;
  }

  /// Dense per-flow slots in use (guaranteed / predicted) — scale with
  /// registered flows, not max(FlowId); the sparse-id regression test and
  /// the hierarchical-mode state bound both pin these.
  [[nodiscard]] std::size_t guaranteed_slots() const {
    return guaranteed_.size();
  }
  [[nodiscard]] std::size_t predicted_slots() const {
    return predicted_priority_.size();
  }

  void enqueue(net::PacketPtr p, sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  void flush(const std::function<void(net::PacketPtr, sim::Time)>& sink,
             sim::Time now) override;
  [[nodiscard]] bool empty() const override { return total_packets_ == 0; }
  [[nodiscard]] std::size_t packets() const override { return total_packets_; }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

 private:
  // ---- WFQ outer layer --------------------------------------------------
  struct Tagged {
    net::PacketPtr packet;
    double finish = 0;
    std::uint64_t order = 0;
  };
  struct GFlow {
    sim::Rate rate = 0;   // 0 = not registered
    double inv_rate = 0;  // cached 1/rate: tag math without division
    double last_finish = 0;
    util::Ring<Tagged> queue;
  };
  static constexpr std::int16_t kNoLevel = -1;

  /// Heap ids: 0 is the flow-0 pseudo-flow, the guaranteed flow in
  /// compact slot s is s+1 (so flow 0 still wins equal finish-tag ties).
  static constexpr std::uint32_t kFlow0Heap = 0;
  static std::uint32_t heap_id(std::uint32_t gslot) { return gslot + 1; }

  /// Compact guaranteed slot of `id`, or SlotMap::kNoSlot when `id` is not
  /// currently add_guaranteed()ed.
  [[nodiscard]] std::uint32_t find_gslot(net::FlowId id) const {
    return g_slots_.find(id);
  }

  // ---- flow 0 internals ---------------------------------------------------
  struct PredictedClass {
    util::DaryHeap<SlabEntry, SlabEntryLess> queue;
    stats::Ewma avg;
  };

  /// Picks the flow-0 packet to transmit (highest class first).
  net::PacketPtr pop_flow0(sim::Time now);
  /// Pushes out a victim from the lowest-priority backlogged flow-0 class.
  net::PacketPtr pushout_flow0(sim::Time now);

  /// Binary feedback: folds the elapsed interval at the current datagram
  /// queue length into the cycle's area integral.  Call before any change
  /// to the datagram queue size.
  void dg_account(sim::Time now) {
    dg_area_ += static_cast<double>(datagram_.size()) *
                (now - dg_last_change_);
    dg_last_change_ = now;
  }
  /// Restarts the regeneration cycle (datagram queue just went empty).
  void dg_reset_cycle(sim::Time now) {
    dg_area_ = 0;
    dg_cycle_start_ = now;
    dg_last_change_ = now;
  }
  [[nodiscard]] int classify(const net::Packet& p) const;

  /// Retires one flow-0 transmission entitlement during a dequeue-time
  /// discard (heads_ entry already removed by the caller).
  void retire_tag_for_discard();

  Config config_;
  WaitObserver observer_;
  DiscardHook discard_hook_;
  std::uint64_t stale_discards_ = 0;
  /// True while flush() drains the queue through the dequeue path.  A
  /// flush is not service: wait observers must not feed d̂_j, FIFO+ must
  /// not shift class averages, and §10 must not divert packets to the
  /// DropSink — every flushed packet belongs to the flush sink.
  bool flushing_ = false;

  util::SlotMap g_slots_;                     // guaranteed id -> slot
  util::SlotMap p_slots_;                     // predicted id -> slot
  std::vector<GFlow> guaranteed_;             // dense, by guaranteed slot
  std::vector<std::int16_t> predicted_priority_;  // dense; kNoLevel = unset
  sim::Rate guaranteed_rate_ = 0;
  sim::Rate flow0_weight_;

  // Fluid/WFQ state shared by guaranteed flows and flow 0: the shared
  // V(t) machinery (tracked flow-0 weight) plus one head entry per flow.
  FluidClock clock_;
  HeadOrder heads_;

  // Flow 0: tag queue (arrival order) + classed packet queues.
  util::Ring<std::pair<double, std::uint64_t>> flow0_tags_;  // (F, order)
  double flow0_last_finish_ = 0;
  double flow0_inv_weight_;  // cached 1 / flow0_weight_
  std::vector<PredictedClass> classes_;       // K predicted levels
  PacketSlab slab_;                           // predicted-class packets
  util::Ring<net::PacketPtr> datagram_;       // level K

  std::uint64_t arrivals_ = 0;
  std::size_t total_packets_ = 0;
  sim::Bits bits_ = 0;

  // DEC-TR-506 marking state (only advanced when config_.binary_feedback).
  double dg_area_ = 0;           ///< ∫ datagram qlen dt over the cycle
  sim::Time dg_cycle_start_ = 0; ///< regeneration cycle origin
  sim::Time dg_last_change_ = 0; ///< last datagram queue-size change
  std::uint64_t cong_marks_ = 0;
  std::uint64_t mark_samples_ = 0;
};

}  // namespace ispn::sched
