#include "sched/edd.h"

#include <cassert>
#include <utility>

namespace ispn::sched {

void EddScheduler::set_bound(net::FlowId flow, sim::Duration bound) {
  assert(bound > 0);
  bounds_[flow] = bound;
}

sim::Duration EddScheduler::bound(net::FlowId flow) const {
  auto it = bounds_.find(flow);
  return it == bounds_.end() ? config_.default_bound : it->second;
}

void EddScheduler::enqueue(net::PacketPtr p, sim::Time now) {
  const double deadline = now + bound(p->flow);
  bits_ += p->size_bits;
  queue_.insert(Entry{deadline, arrivals_++, std::move(p)});

  if (queue_.size() > config_.capacity_pkts) {
    // Evict the least urgent packet (largest deadline).  With homogeneous
    // bounds this degenerates to tail drop.
    auto victim = std::prev(queue_.end());
    bits_ -= victim->packet->size_bits;
    net::PacketPtr evicted = std::move(victim->packet);
    queue_.erase(victim);
    drop(std::move(evicted), now);
  }
}

net::PacketPtr EddScheduler::dequeue(sim::Time /*now*/) {
  if (queue_.empty()) return nullptr;
  auto it = queue_.begin();
  net::PacketPtr p = std::move(it->packet);
  queue_.erase(it);
  bits_ -= p->size_bits;
  return p;
}

}  // namespace ispn::sched
