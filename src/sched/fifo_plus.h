// FIFO+ : FIFO-style sharing correlated across hops (paper §6).
//
// Each switch measures the average queueing delay of each class at that
// switch.  When a packet departs, the difference between its own delay and
// the class average is added to the jitter-offset field in its header.  A
// downstream FIFO+ queue orders packets by *expected* arrival time —
// actual arrival minus the accumulated offset — i.e. as if every packet had
// received exactly average service upstream.  A packet that has been
// unlucky (positive offset) is scheduled ahead of its actual-arrival
// position; a lucky one waits.  The effect (Table 2): 99.9th-percentile
// delay grows far more slowly with path length than under plain FIFO.
//
// At the first hop every offset is zero, so FIFO+ degenerates to FIFO there.
//
// The class-average estimator is an EWMA over per-packet waiting times.
// The paper leaves the estimator unspecified; a long-horizon average (gain
// 2^-12 ≈ several seconds of traffic) reproduces the paper's Table 2 much
// more closely than a fast one — with a fast average the "expected arrival"
// baseline itself chases each burst and the correction cancels out.  See
// DESIGN.md §4 and bench_fifoplus_gain for the sensitivity ablation.
//
// The expected-arrival ordering only ever needs push + pop-min, so it is a
// flat min-heap of 24-byte POD keys rather than a tree; packets park in a
// slab on the side so sifts never move a unique_ptr.

#pragma once

#include <cstdint>

#include "sched/keys.h"
#include "sched/packet_slab.h"
#include "sched/scheduler.h"
#include "stats/ewma.h"
#include "util/dary_heap.h"

namespace ispn::sched {

class FifoPlusScheduler final : public Scheduler {
 public:
  struct Config {
    std::size_t capacity_pkts = 200;
    /// EWMA gain for the per-switch class-average delay.
    double avg_gain = 1.0 / 4096.0;
    /// When true (default), departing packets accumulate the jitter offset.
    /// Disabling turns the discipline into deadline-ordered FIFO with
    /// whatever offsets upstream wrote — used by ablation benches.
    bool update_offsets = true;
    /// §10 stale-packet discard threshold on the accumulated offset
    /// (seconds); infinity disables (default).
    sim::Duration stale_offset_threshold = sim::kTimeInfinity;
  };

  FifoPlusScheduler() : FifoPlusScheduler(Config{}) {}
  explicit FifoPlusScheduler(Config config)
      : config_(config), avg_(config.avg_gain) {}

  void enqueue(net::PacketPtr p, sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] std::size_t packets() const override { return queue_.size(); }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

  /// Current class-average waiting time at this switch (seconds).
  [[nodiscard]] double class_average() const { return avg_.value(); }

  /// Packets discarded as stale so far (§10).
  [[nodiscard]] std::uint64_t stale_discards() const {
    return stale_discards_;
  }

 private:
  // Heap entries are sched::SlabEntry with key = expected arrival
  // (enqueued_at - jitter_offset).
  Config config_;
  stats::Ewma avg_;
  PacketSlab slab_;
  util::DaryHeap<SlabEntry, SlabEntryLess> queue_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t stale_discards_ = 0;
  sim::Bits bits_ = 0;
};

}  // namespace ispn::sched
