// The fluid GPS virtual clock V(t), shared by every WFQ-family discipline.
//
// The fluid reference system serves each backlogged flow α at rate
// C·φ_α / Σ_{β∈B(t)} φ_β, so V(t) is piecewise linear with slope
// C / Σ_{β∈B(t)} φ_β and is frozen while the fluid system is idle.
// Advancing V exactly requires walking the fluid *departure epochs* — the
// instants backlogged flows empty in the fluid system — re-evaluating the
// slope at each ("iterated deletion", Demers–Keshav–Shenker /
// Parekh–Gallager).  That advance loop used to be copy-pasted between
// wfq.cc and unified.cc; it lives here exactly once.
//
// State per backlogged flow is one re-keyable entry in an indexed ordering
// (keyed by the flow's largest finish tag) plus its weight in a dense
// vector.  The ordering backend is selectable at construction
// (util::OrderBackend): an indexed min-heap, or a calendar queue bucketed
// over virtual time that makes the departure-epoch advance O(1) amortized
// instead of full-depth re-keys — both produce the identical epoch order
// (same keys, same id tie-break), so V(t) trajectories are bit-equal under
// either backend (asserted by tests/test_order_backend_diff.cc).  The
// slope and its reciprocal are recomputed only when the backlogged-weight
// sum changes (slope_dirty_), so the steady-state advance performs no
// division; stamp() takes the caller's cached 1/weight so tag math is
// division-free too.
//
// Flow-0 policy.  The two historical copies diverged in how they treated
// a flow whose weight changes *while it is fluid-backlogged*:
// WfqScheduler's flows have weights frozen for the duration of a backlog
// (add_flow() refuses to re-weight a backlogged flow), whereas
// UnifiedScheduler's pseudo-flow 0 is re-weighted in place whenever a
// guaranteed flow is admitted or torn down (its weight is μ − Σ r_α).
// That divergence is now an explicit constructor knob instead of two
// subtly different advance loops:
//
//   Flow0Policy::kPinned   — reweight() of a backlogged flow is deferred:
//                            the active-weight sum keeps the arrival-time
//                            weight until the flow next goes fluid-idle
//                            (WfqScheduler semantics).
//   Flow0Policy::kTracked  — reweight() adjusts the active-weight sum
//                            immediately, changing the V(t) slope from
//                            this instant (UnifiedScheduler's flow 0).
//
// test_fluid_clock.cc pins both behaviours and their divergence.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/units.h"
#include "util/calendar_queue.h"

namespace ispn::sched {

class FluidClock {
 public:
  enum class Flow0Policy {
    kPinned,   ///< backlogged flows keep their arrival-time weight (WFQ)
    kTracked,  ///< reweight() takes effect immediately (unified's flow 0)
  };

  explicit FluidClock(
      sim::Rate link_rate, Flow0Policy policy = Flow0Policy::kPinned,
      util::OrderBackend backend = util::OrderBackend::kAuto)
      : link_rate_(link_rate), policy_(policy), fluid_(backend) {
    assert(link_rate_ > 0);
  }

  /// Stamps one arrival for flow `id`:
  ///
  ///     S = max(V, last_finish),   F = S + size · inv_weight
  ///
  /// marks the flow fluid-backlogged with `weight` if it was idle, and
  /// re-keys its departure epoch to F.  Precondition: advance(now) has
  /// been called for the arrival instant.  Returns F.
  double stamp(std::uint32_t id, double last_finish, sim::Bits size,
               double weight, double inv_weight) {
    const double start = std::max(vtime_, last_finish);
    const double finish = start + size * inv_weight;
    if (!fluid_.contains(id)) {
      if (id >= weights_.size()) weights_.resize(id + 1, 0.0);
      weights_[id] = weight;
      active_weight_ += weight;
      slope_dirty_ = true;
    }
    fluid_.upsert(id, finish);
    return finish;
  }

  /// Advances V(t) from the last update instant to `now`, processing the
  /// fluid departure epochs in between.
  void advance(sim::Time now) {
    while (last_update_ < now) {
      if (fluid_.empty()) {
        // Fluid system idle: V frozen.
        last_update_ = now;
        return;
      }
      assert(active_weight_ > 0);
      if (slope_dirty_) {
        // Memoised on the weight sum: a lone backlogged flow (or any
        // workload whose sum returns to a previous value) re-dirties the
        // slope every epoch without actually changing it — skip the
        // divisions then.
        if (active_weight_ != slope_weight_) {
          slope_weight_ = active_weight_;
          slope_ = link_rate_ / active_weight_;
          inv_slope_ = active_weight_ / link_rate_;
        }
        slope_dirty_ = false;
      }
      const double next_finish = fluid_.top_key();
      const sim::Time reach = last_update_ + (next_finish - vtime_) * inv_slope_;
      if (reach <= now) {
        // A flow empties in the fluid system before `now`.
        vtime_ = next_finish;
        last_update_ = reach;
        while (!fluid_.empty() && fluid_.top_key() <= vtime_) {
          const std::uint32_t id = fluid_.pop().id;
          active_weight_ -= weights_[id];
          slope_dirty_ = true;
        }
        if (fluid_.empty()) active_weight_ = 0;  // absorb fp residue
      } else {
        vtime_ += slope_ * (now - last_update_);
        last_update_ = now;
      }
    }
  }

  /// Changes the weight of flow `id` while it is backlogged.  Under
  /// kTracked the active-weight sum (and hence the V(t) slope) changes
  /// immediately; under kPinned the call is a no-op until the flow next
  /// goes fluid-idle (a subsequent stamp() picks up the caller's new
  /// weight).  No-op when the flow is fluid-idle — there is nothing to
  /// track; the next stamp() carries the weight.
  void reweight(std::uint32_t id, double new_weight) {
    if (policy_ != Flow0Policy::kTracked) return;
    if (!fluid_.contains(id)) return;
    active_weight_ += new_weight - weights_[id];
    weights_[id] = new_weight;
    slope_dirty_ = true;
  }

  /// Force-removes flow `id` from the fluid system (service teardown).
  void retire(std::uint32_t id) {
    if (!fluid_.contains(id)) return;
    fluid_.erase(id);
    active_weight_ -= weights_[id];
    slope_dirty_ = true;
    if (fluid_.empty()) active_weight_ = 0;  // absorb fp residue
  }

  /// Re-rates the link (capacity brown-out / restore): V(t)'s slope uses
  /// the new C from this instant.  Call only with advance(now) done for
  /// the change instant, so the old slope covered exactly [last, now].
  /// Poisoning the memoised slope weight forces the next advance() to
  /// recompute even though the weight SUM is unchanged.
  void set_link_rate(sim::Rate rate) {
    assert(rate > 0);
    link_rate_ = rate;
    slope_weight_ = -1.0;
    slope_dirty_ = true;
  }

  [[nodiscard]] sim::Rate link_rate() const { return link_rate_; }

  /// True while `id` is backlogged in the fluid system.
  [[nodiscard]] bool backlogged(std::uint32_t id) const {
    return fluid_.contains(id);
  }

  /// V at the last advance() instant.
  [[nodiscard]] double vtime() const { return vtime_; }

  /// Sum of weights of fluid-backlogged flows (diagnostic).
  [[nodiscard]] double active_weight() const { return active_weight_; }

  [[nodiscard]] bool idle() const { return fluid_.empty(); }

 private:
  sim::Rate link_rate_;
  Flow0Policy policy_;

  double vtime_ = 0;
  sim::Time last_update_ = 0;
  double active_weight_ = 0;
  double slope_ = 0;         // link_rate / active_weight_
  double inv_slope_ = 0;     // active_weight_ / link_rate
  double slope_weight_ = 0;  // weight sum slope_/inv_slope_ were computed at
  bool slope_dirty_ = true;
  util::OrderIndex<double, std::less<double>> fluid_;
  std::vector<double> weights_;  // weight each backlogged id contributed
};

}  // namespace ispn::sched
