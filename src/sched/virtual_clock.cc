#include "sched/virtual_clock.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::sched {

VirtualClockScheduler::Flow& VirtualClockScheduler::flow_ref(
    std::uint32_t idx) {
  if (idx >= flows_.size()) flows_.resize(idx + 1);
  Flow& f = flows_[idx];
  if (f.rate <= 0) f.rate = config_.default_rate;
  return f;
}

void VirtualClockScheduler::add_flow(net::FlowId flow, sim::Rate rate) {
  assert(rate > 0);
  Flow& f = flow_ref(slots_.acquire(flow));
  f.rate = rate;
  f.aux_vc = 0.0;
}

double VirtualClockScheduler::aux_vc(net::FlowId flow) const {
  const std::uint32_t slot = slots_.find(flow);
  if (slot == util::SlotMap::kNoSlot) return 0.0;
  return flows_[slot].aux_vc;
}

void VirtualClockScheduler::enqueue(net::PacketPtr p, sim::Time now) {
  Flow& flow = flow_ref(slots_.acquire(p->flow));
  flow.aux_vc = std::max(now, flow.aux_vc) + p->size_bits / flow.rate;
  bits_ += p->size_bits;
  queue_.push(SlabEntry{flow.aux_vc, arrivals_++, slab_.put(std::move(p))});

  if (queue_.size() > config_.capacity_pkts) {
    // Evict the largest stamp: the most overdrawn flow's newest packet
    // (possibly the arrival itself), protecting conforming flows' buffer
    // share just as their virtual clocks protect their bandwidth.  The
    // linear scan runs only when the buffer is already full.
    const auto& raw = queue_.raw();
    std::size_t worst = 0;
    for (std::size_t i = 1; i < raw.size(); ++i) {
      if (SlabEntryLess{}(raw[worst], raw[i])) worst = i;
    }
    net::PacketPtr victim = slab_.take(queue_.remove_at(worst).slot);
    bits_ -= victim->size_bits;
    drop(std::move(victim), now);
  }
}

net::PacketPtr VirtualClockScheduler::dequeue(sim::Time /*now*/) {
  if (queue_.empty()) return nullptr;
  net::PacketPtr p = slab_.take(queue_.pop().slot);
  bits_ -= p->size_bits;
  return p;
}

}  // namespace ispn::sched
