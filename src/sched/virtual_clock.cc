#include "sched/virtual_clock.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::sched {

void VirtualClockScheduler::add_flow(net::FlowId flow, sim::Rate rate) {
  assert(rate > 0);
  flows_[flow] = Flow{rate, 0.0};
}

double VirtualClockScheduler::aux_vc(net::FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0.0 : it->second.aux_vc;
}

std::vector<net::PacketPtr> VirtualClockScheduler::enqueue(net::PacketPtr p,
                                                           sim::Time now) {
  std::vector<net::PacketPtr> dropped;
  auto [it, inserted] = flows_.try_emplace(p->flow);
  if (inserted) it->second = Flow{config_.default_rate, 0.0};
  Flow& flow = it->second;
  flow.aux_vc = std::max(now, flow.aux_vc) + p->size_bits / flow.rate;
  bits_ += p->size_bits;
  queue_.insert(Entry{flow.aux_vc, arrivals_++, std::move(p)});

  if (queue_.size() > config_.capacity_pkts) {
    // Evict the largest stamp: the most overdrawn flow's newest packet
    // (possibly the arrival itself), protecting conforming flows' buffer
    // share just as their virtual clocks protect their bandwidth.
    auto victim = std::prev(queue_.end());
    bits_ -= victim->packet->size_bits;
    dropped.push_back(std::move(victim->packet));
    queue_.erase(victim);
  }
  return dropped;
}

net::PacketPtr VirtualClockScheduler::dequeue(sim::Time /*now*/) {
  if (queue_.empty()) return nullptr;
  auto it = queue_.begin();
  net::PacketPtr p = std::move(it->packet);
  queue_.erase(it);
  bits_ -= p->size_bits;
  return p;
}

}  // namespace ispn::sched
