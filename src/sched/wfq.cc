#include "sched/wfq.h"

#include <cassert>
#include <utility>

namespace ispn::sched {

WfqScheduler::WfqScheduler(Config config)
    : config_(config),
      clock_(config.link_rate, FluidClock::Flow0Policy::kPinned,
             config.order_backend),
      heads_(config.order_backend) {
  assert(config_.link_rate > 0);
  assert(config_.default_weight > 0);
}

void WfqScheduler::add_flow(net::FlowId flow, double weight) {
  assert(weight > 0);
  const std::uint32_t slot = slots_.acquire(flow);
  Flow& f = flow_ref(slot);
  assert(!clock_.backlogged(slot) && f.queue.empty() &&
         "cannot re-weight a backlogged flow");
  f.weight = weight;
  f.inv_weight = 1.0 / weight;
}

double WfqScheduler::weight(net::FlowId flow) const {
  const std::uint32_t slot = slots_.find(flow);
  if (slot == util::SlotMap::kNoSlot) return config_.default_weight;
  return flows_[slot].weight;
}

WfqScheduler::Flow& WfqScheduler::flow_ref(std::uint32_t idx) {
  if (idx >= flows_.size()) {
    const std::size_t old_size = flows_.size();
    flows_.resize(idx + 1);
    for (std::size_t i = old_size; i < flows_.size(); ++i) {
      flows_[i].weight = config_.default_weight;
      flows_[i].inv_weight = 1.0 / config_.default_weight;
    }
  }
  return flows_[idx];
}

double WfqScheduler::virtual_time(sim::Time now) {
  clock_.advance(now);
  return clock_.vtime();
}

void WfqScheduler::enqueue(net::PacketPtr p, sim::Time now) {
  clock_.advance(now);

  const std::uint32_t slot = slots_.acquire(p->flow);
  Flow& f = flow_ref(slot);

  const double finish =
      clock_.stamp(slot, f.last_finish, p->size_bits, f.weight, f.inv_weight);
  f.last_finish = finish;

  const std::uint64_t order = arrivals_++;
  if (f.queue.empty()) heads_.upsert(slot, HeadKey{finish, order});
  bits_ += p->size_bits;
  ++total_packets_;
  f.queue.push_back(Tagged{std::move(p), finish, order});

  if (total_packets_ > config_.capacity_pkts) {
    // Buffer policy from the original Fair Queueing paper: drop the newest
    // packet of the flow with the largest backlog, so a flooding source
    // cannot starve conforming flows of buffer space.  Tags and fluid
    // state are left as-is (conservative: the flow looks at most busier).
    std::uint32_t victim_slot = slot;
    std::size_t longest = 0;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (flows_[i].queue.size() > longest) {
        longest = flows_[i].queue.size();
        victim_slot = static_cast<std::uint32_t>(i);
      }
    }
    Flow& victim_flow = flows_[victim_slot];
    Tagged victim = victim_flow.queue.pop_back();
    if (victim_flow.queue.empty()) heads_.erase(victim_slot);
    bits_ -= victim.packet->size_bits;
    --total_packets_;
    drop(std::move(victim.packet), now);
  }
}

net::PacketPtr WfqScheduler::dequeue(sim::Time now) {
  if (total_packets_ == 0) return nullptr;
  clock_.advance(now);

  assert(!heads_.empty());
  const std::uint32_t id = heads_.pop().id;
  Flow& f = flows_[id];
  assert(!f.queue.empty());
  Tagged head = f.queue.pop_front();
  if (!f.queue.empty()) {
    const Tagged& next = f.queue.front();
    heads_.upsert(id, HeadKey{next.finish, next.order});
  }
  bits_ -= head.packet->size_bits;
  --total_packets_;
  return std::move(head.packet);
}

}  // namespace ispn::sched
