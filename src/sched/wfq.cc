#include "sched/wfq.h"

#include <cassert>
#include <utility>

namespace ispn::sched {

WfqScheduler::WfqScheduler(Config config) : config_(config) {
  assert(config_.link_rate > 0);
  assert(config_.default_weight > 0);
}

void WfqScheduler::add_flow(net::FlowId flow, double weight) {
  assert(weight > 0);
  Flow& f = flows_[flow];
  assert(!f.fluid_backlogged && f.queue.empty() &&
         "cannot re-weight a backlogged flow");
  f.weight = weight;
}

double WfqScheduler::weight(net::FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? config_.default_weight : it->second.weight;
}

WfqScheduler::Flow& WfqScheduler::flow_ref(net::FlowId id) {
  auto [it, inserted] = flows_.try_emplace(id);
  if (inserted) it->second.weight = config_.default_weight;
  return it->second;
}

void WfqScheduler::advance_virtual_time(sim::Time now) {
  while (last_update_ < now) {
    if (fluid_.empty()) {
      // Fluid system idle: V frozen.
      last_update_ = now;
      return;
    }
    assert(active_weight_ > 0);
    const double slope = config_.link_rate / active_weight_;
    const double next_finish = fluid_.begin()->first;
    const sim::Time reach = last_update_ + (next_finish - vtime_) / slope;
    if (reach <= now) {
      // A flow empties in the fluid system before `now`.
      vtime_ = next_finish;
      last_update_ = reach;
      while (!fluid_.empty() && fluid_.begin()->first <= vtime_) {
        Flow& f = flows_.at(fluid_.begin()->second);
        f.fluid_backlogged = false;
        active_weight_ -= f.weight;
        fluid_.erase(fluid_.begin());
      }
      if (fluid_.empty()) active_weight_ = 0;  // absorb fp residue
    } else {
      vtime_ += slope * (now - last_update_);
      last_update_ = now;
    }
  }
}

double WfqScheduler::virtual_time(sim::Time now) {
  advance_virtual_time(now);
  return vtime_;
}

std::vector<net::PacketPtr> WfqScheduler::enqueue(net::PacketPtr p,
                                                  sim::Time now) {
  std::vector<net::PacketPtr> dropped;
  advance_virtual_time(now);

  const net::FlowId id = p->flow;
  Flow& f = flow_ref(id);

  const double start = std::max(vtime_, f.last_finish);
  const double finish = start + p->size_bits / f.weight;

  if (f.fluid_backlogged) {
    // Re-key the fluid entry to the new last finish tag.
    fluid_.erase({f.last_finish, id});
  } else {
    f.fluid_backlogged = true;
    active_weight_ += f.weight;
  }
  f.last_finish = finish;
  fluid_.insert({finish, id});

  const std::uint64_t order = arrivals_++;
  if (f.queue.empty()) heads_.insert({finish, order, id});
  bits_ += p->size_bits;
  ++total_packets_;
  f.queue.push_back(Tagged{std::move(p), finish, order});

  if (total_packets_ > config_.capacity_pkts) {
    // Buffer policy from the original Fair Queueing paper: drop the newest
    // packet of the flow with the largest backlog, so a flooding source
    // cannot starve conforming flows of buffer space.  Tags and fluid
    // state are left as-is (conservative: the flow looks at most busier).
    net::FlowId victim_id = id;
    std::size_t longest = 0;
    for (const auto& [fid, flow] : flows_) {
      if (flow.queue.size() > longest) {
        longest = flow.queue.size();
        victim_id = fid;
      }
    }
    Flow& victim_flow = flows_.at(victim_id);
    Tagged victim = std::move(victim_flow.queue.back());
    victim_flow.queue.pop_back();
    if (victim_flow.queue.empty()) {
      heads_.erase({victim.finish, victim.order, victim_id});
    }
    bits_ -= victim.packet->size_bits;
    --total_packets_;
    dropped.push_back(std::move(victim.packet));
  }
  return dropped;
}

net::PacketPtr WfqScheduler::dequeue(sim::Time now) {
  if (total_packets_ == 0) return nullptr;
  advance_virtual_time(now);
  assert(!heads_.empty());

  const auto [finish, order, id] = *heads_.begin();
  heads_.erase(heads_.begin());
  Flow& f = flows_.at(id);
  assert(!f.queue.empty());
  Tagged head = std::move(f.queue.front());
  f.queue.pop_front();
  if (!f.queue.empty()) {
    const Tagged& next = f.queue.front();
    heads_.insert({next.finish, next.order, id});
  }
  bits_ -= head.packet->size_bits;
  --total_packets_;
  return std::move(head.packet);
}

}  // namespace ispn::sched
