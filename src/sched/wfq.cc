#include "sched/wfq.h"

#include <cassert>
#include <utility>

namespace ispn::sched {


WfqScheduler::WfqScheduler(Config config) : config_(config) {
  assert(config_.link_rate > 0);
  assert(config_.default_weight > 0);
}

void WfqScheduler::add_flow(net::FlowId flow, double weight) {
  assert(weight > 0);
  Flow& f = flow_ref(slot_of(flow));
  assert(!f.fluid_backlogged && f.queue.empty() &&
         "cannot re-weight a backlogged flow");
  f.weight = weight;
  f.inv_weight = 1.0 / weight;
}

double WfqScheduler::weight(net::FlowId flow) const {
  const std::uint32_t slot = slot_of(flow);
  if (slot >= flows_.size()) return config_.default_weight;
  return flows_[slot].weight;
}

WfqScheduler::Flow& WfqScheduler::flow_ref(std::uint32_t idx) {
  if (idx >= flows_.size()) {
    const std::size_t old_size = flows_.size();
    flows_.resize(idx + 1);
    for (std::size_t i = old_size; i < flows_.size(); ++i) {
      flows_[i].weight = config_.default_weight;
      flows_[i].inv_weight = 1.0 / config_.default_weight;
    }
  }
  return flows_[idx];
}

void WfqScheduler::advance_virtual_time(sim::Time now) {
  while (last_update_ < now) {
    if (fluid_.empty()) {
      // Fluid system idle: V frozen.
      last_update_ = now;
      return;
    }
    assert(active_weight_ > 0);
    if (slope_dirty_) {
      slope_ = config_.link_rate / active_weight_;
      inv_slope_ = active_weight_ / config_.link_rate;
      slope_dirty_ = false;
    }
    const double next_finish = fluid_.top().key;
    const sim::Time reach =
        last_update_ + (next_finish - vtime_) * inv_slope_;
    if (reach <= now) {
      // A flow empties in the fluid system before `now`.
      vtime_ = next_finish;
      last_update_ = reach;
      while (!fluid_.empty() && fluid_.top().key <= vtime_) {
        Flow& f = flows_[fluid_.pop().id];
        f.fluid_backlogged = false;
        active_weight_ -= f.weight;
        slope_dirty_ = true;
      }
      if (fluid_.empty()) active_weight_ = 0;  // absorb fp residue
    } else {
      vtime_ += slope_ * (now - last_update_);
      last_update_ = now;
    }
  }
}

double WfqScheduler::virtual_time(sim::Time now) {
  advance_virtual_time(now);
  return vtime_;
}

std::vector<net::PacketPtr> WfqScheduler::enqueue(net::PacketPtr p,
                                                  sim::Time now) {
  std::vector<net::PacketPtr> dropped;
  advance_virtual_time(now);

  const std::uint32_t slot = slot_of(p->flow);
  Flow& f = flow_ref(slot);

  const double start = std::max(vtime_, f.last_finish);
  const double finish = start + p->size_bits * f.inv_weight;

  if (!f.fluid_backlogged) {
    f.fluid_backlogged = true;
    active_weight_ += f.weight;
    slope_dirty_ = true;
  }
  f.last_finish = finish;
  fluid_.upsert(slot, finish);  // re-keys in place when already present

  const std::uint64_t order = arrivals_++;
  if (f.queue.empty()) heads_.upsert(slot, HeadKey{finish, order});
  bits_ += p->size_bits;
  ++total_packets_;
  f.queue.push_back(Tagged{std::move(p), finish, order});

  if (total_packets_ > config_.capacity_pkts) {
    // Buffer policy from the original Fair Queueing paper: drop the newest
    // packet of the flow with the largest backlog, so a flooding source
    // cannot starve conforming flows of buffer space.  Tags and fluid
    // state are left as-is (conservative: the flow looks at most busier).
    std::uint32_t victim_slot = slot;
    std::size_t longest = 0;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (flows_[i].queue.size() > longest) {
        longest = flows_[i].queue.size();
        victim_slot = static_cast<std::uint32_t>(i);
      }
    }
    Flow& victim_flow = flows_[victim_slot];
    Tagged victim = victim_flow.queue.pop_back();
    if (victim_flow.queue.empty()) heads_.erase(victim_slot);
    bits_ -= victim.packet->size_bits;
    --total_packets_;
    dropped.push_back(std::move(victim.packet));
  }
  return dropped;
}

net::PacketPtr WfqScheduler::dequeue(sim::Time now) {
  if (total_packets_ == 0) return nullptr;
  advance_virtual_time(now);

  assert(!heads_.empty());
  const std::uint32_t id = heads_.pop().id;
  Flow& f = flows_[id];
  assert(!f.queue.empty());
  Tagged head = f.queue.pop_front();
  if (!f.queue.empty()) {
    const Tagged& next = f.queue.front();
    heads_.upsert(id, HeadKey{next.finish, next.order});
  }
  bits_ -= head.packet->size_bits;
  --total_packets_;
  return std::move(head.packet);
}

}  // namespace ispn::sched
