// Delay-EDD-style earliest-deadline-first scheduling (Ferrari & Verma,
// the paper's reference [7]; background in §5).
//
// Each flow is assigned a local delay bound d_i at this switch; a packet
// arriving at time a gets deadline a + d_i and packets transmit in
// deadline order.  §5's observation drops out as a special case: with a
// single class (equal d_i), EDD *is* FIFO.
//
// This is the scheduling core only — Delay-EDD's admission test (peak-rate
// sum) belongs to the admission layer and is noted in DESIGN.md.

#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "sched/scheduler.h"

namespace ispn::sched {

class EddScheduler final : public Scheduler {
 public:
  struct Config {
    std::size_t capacity_pkts = 200;
    /// Local delay bound for unregistered flows (seconds).
    sim::Duration default_bound = 0.1;
  };

  explicit EddScheduler(Config config) : config_(config) {}

  /// Sets the local delay bound of `flow` at this switch.
  void set_bound(net::FlowId flow, sim::Duration bound);

  [[nodiscard]] sim::Duration bound(net::FlowId flow) const;

  void enqueue(net::PacketPtr p, sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] std::size_t packets() const override { return queue_.size(); }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

 private:
  struct Entry {
    double deadline;
    std::uint64_t order;
    mutable net::PacketPtr packet;
    bool operator<(const Entry& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      return order < o.order;
    }
  };

  Config config_;
  std::map<net::FlowId, sim::Duration> bounds_;
  std::set<Entry> queue_;
  std::uint64_t arrivals_ = 0;
  sim::Bits bits_ = 0;
};

}  // namespace ispn::sched
