// Side storage for packets whose ordering lives in a POD heap.
//
// Sifting heap entries that contain a PacketPtr moves a unique_ptr (with
// its deleter and moved-from destructor churn) once per level — the
// dominant cost in the FIFO+ profile.  Instead, schedulers park the
// PacketPtr in a slab slot and order a 24-byte trivially-copyable key
// {priority, order, slot}; the heap sifts raw words and the packet moves
// exactly twice (in at enqueue, out at dequeue).  Slots are recycled
// through a free list, so steady state allocates nothing.

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace ispn::sched {

class PacketSlab {
 public:
  /// Parks a packet; returns its slot index.
  std::uint32_t put(net::PacketPtr p) {
    assert(p != nullptr);
    if (free_.empty()) {
      slots_.push_back(std::move(p));
      return static_cast<std::uint32_t>(slots_.size() - 1);
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    slots_[slot] = std::move(p);
    return slot;
  }

  /// Takes the packet back and recycles the slot.
  net::PacketPtr take(std::uint32_t slot) {
    assert(slot < slots_.size() && slots_[slot] != nullptr);
    net::PacketPtr p = std::move(slots_[slot]);
    free_.push_back(slot);
    return p;
  }

  /// Peeks without releasing (victim inspection on drop paths).
  [[nodiscard]] const net::Packet& peek(std::uint32_t slot) const {
    assert(slot < slots_.size() && slots_[slot] != nullptr);
    return *slots_[slot];
  }

 private:
  std::vector<net::PacketPtr> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace ispn::sched
