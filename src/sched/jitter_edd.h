// Jitter-EDD (Verma, Zhang & Ferrari '91 — the paper's reference [22]).
//
// The non-work-conserving counterpart of FIFO+ (§11 compares them
// directly): instead of *reordering* by expected arrival, Jitter-EDD
// *holds* each packet until the jitter it accumulated upstream is
// cancelled, then runs earliest-deadline-first over the eligible packets.
//
// Mechanics per hop, using one header field (we reuse Packet::
// jitter_offset with the opposite sign convention — here it carries the
// "ahead-of-schedule" time stamped by the previous switch):
//
//   eligible = arrival + max(0, ahead)          (hold to cancel jitter)
//   deadline = eligible + d_flow                (local delay bound)
//   on departure at time t:  ahead' = deadline - t   (>= 0 if early)
//
// A packet therefore leaves every switch exactly at its local deadline in
// the reconstructed schedule, trading higher average delay for very low
// delivery jitter — the opposite end of the design space from FIFO+,
// which spends the same header field on sharing.

#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "sched/scheduler.h"

namespace ispn::sched {

class JitterEddScheduler final : public Scheduler {
 public:
  struct Config {
    std::size_t capacity_pkts = 200;
    /// Local delay bound for unregistered flows (seconds).
    sim::Duration default_bound = 0.1;
  };

  explicit JitterEddScheduler(Config config) : config_(config) {}

  /// Sets the local delay bound d of `flow` at this switch.
  void set_bound(net::FlowId flow, sim::Duration bound);

  [[nodiscard]] sim::Duration bound(net::FlowId flow) const;

  void enqueue(net::PacketPtr p, sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] sim::Time next_eligible(sim::Time now) const override;
  [[nodiscard]] bool empty() const override {
    return ready_.empty() && holding_.empty();
  }
  [[nodiscard]] std::size_t packets() const override {
    return ready_.size() + holding_.size();
  }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

  /// Packets currently held (not yet eligible) — diagnostic.
  [[nodiscard]] std::size_t holding() const { return holding_.size(); }

 private:
  struct Entry {
    double key;  // holding_: eligible time; ready_: deadline
    double deadline;
    std::uint64_t order;
    mutable net::PacketPtr packet;
    bool operator<(const Entry& o) const {
      if (key != o.key) return key < o.key;
      return order < o.order;
    }
  };

  /// Moves packets whose eligibility has arrived into the ready set.
  void promote(sim::Time now);

  Config config_;
  std::map<net::FlowId, sim::Duration> bounds_;
  std::set<Entry> holding_;  // ordered by eligible time
  std::set<Entry> ready_;    // ordered by deadline
  std::uint64_t arrivals_ = 0;
  sim::Bits bits_ = 0;
};

}  // namespace ispn::sched
