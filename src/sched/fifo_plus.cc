#include "sched/fifo_plus.h"

#include <utility>

namespace ispn::sched {

void FifoPlusScheduler::enqueue(net::PacketPtr p, sim::Time now) {
  if (queue_.size() >= config_.capacity_pkts) {
    drop(std::move(p), now);
    return;
  }
  // Order by when the packet *would* have arrived under average upstream
  // service.  enqueued_at is stamped by the port before calling us.
  const double key = p->enqueued_at - p->jitter_offset;
  bits_ += p->size_bits;
  queue_.push(SlabEntry{key, arrivals_++, slab_.put(std::move(p))});
}

net::PacketPtr FifoPlusScheduler::dequeue(sim::Time now) {
  while (!queue_.empty()) {
    net::PacketPtr p = slab_.take(queue_.pop().slot);
    bits_ -= p->size_bits;

    // §10: a packet whose offset says it is hopelessly behind its class's
    // average service is discarded, freeing the link for live packets.
    // Reported through the DropSink like every other loss, so the port's
    // drop accounting sees dequeue-time discards too.
    if (p->jitter_offset > config_.stale_offset_threshold) {
      ++stale_discards_;
      drop(std::move(p), now);
      continue;
    }

    if (config_.update_offsets) {
      // Waiting time at this hop, folded into the class average; the
      // packet carries forward how far it deviated from that average.
      const double wait = now - p->enqueued_at;
      const double avg = avg_.update(wait);
      p->jitter_offset += wait - avg;
    }
    return p;
  }
  return nullptr;
}

}  // namespace ispn::sched
