#include "sched/fifo.h"

#include <utility>

namespace ispn::sched {

void FifoScheduler::enqueue(net::PacketPtr p, sim::Time now) {
  if (queue_.size() >= capacity_) {
    drop(std::move(p), now);
    return;
  }
  bits_ += p->size_bits;
  queue_.push_back(std::move(p));
}

net::PacketPtr FifoScheduler::dequeue(sim::Time /*now*/) {
  if (queue_.empty()) return nullptr;
  net::PacketPtr p = queue_.pop_front();
  bits_ -= p->size_bits;
  return p;
}

}  // namespace ispn::sched
