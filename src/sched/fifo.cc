#include "sched/fifo.h"

#include <utility>

namespace ispn::sched {

std::vector<net::PacketPtr> FifoScheduler::enqueue(net::PacketPtr p,
                                                   sim::Time /*now*/) {
  std::vector<net::PacketPtr> dropped;
  if (queue_.size() >= capacity_) {
    dropped.push_back(std::move(p));
    return dropped;
  }
  bits_ += p->size_bits;
  queue_.push_back(std::move(p));
  return dropped;
}

net::PacketPtr FifoScheduler::dequeue(sim::Time /*now*/) {
  if (queue_.empty()) return nullptr;
  net::PacketPtr p = queue_.pop_front();
  bits_ -= p->size_bits;
  return p;
}

}  // namespace ispn::sched
