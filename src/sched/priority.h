// Strict priority over composable child disciplines.
//
// The paper (§5) observes that priority is a *jitter-shifting* mechanism:
// higher classes export their jitter to lower classes, which see it as a
// baseline on top of their own burstiness.  PriorityScheduler composes any
// child Scheduler per level (FIFO, FIFO+, ...), dequeuing from the highest
// non-empty level.  Level 0 is the highest priority.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sched/scheduler.h"

namespace ispn::sched {

class PriorityScheduler final : public Scheduler {
 public:
  /// Maps a packet to its level in [0, children.size()).  The default uses
  /// Packet::priority, clamped to the top/bottom level.
  using Classifier = std::function<std::size_t(const net::Packet&)>;

  /// Takes ownership of one child discipline per level, highest first.
  explicit PriorityScheduler(std::vector<std::unique_ptr<Scheduler>> children,
                             Classifier classify = {});

  /// Children report drops straight to the port's sink; the composite
  /// keeps no drop state of its own.
  void set_drop_sink(DropSink sink) override;

  void enqueue(net::PacketPtr p, sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] bool empty() const override;
  [[nodiscard]] std::size_t packets() const override;
  [[nodiscard]] sim::Bits backlog_bits() const override;

  [[nodiscard]] std::size_t levels() const { return children_.size(); }
  [[nodiscard]] Scheduler& level(std::size_t i) { return *children_.at(i); }

 private:
  std::vector<std::unique_ptr<Scheduler>> children_;
  Classifier classify_;
};

}  // namespace ispn::sched
