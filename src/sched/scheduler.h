// The queueing-discipline interface used by every output port.
//
// A Scheduler owns the packets queued at one output port.  The port calls
// enqueue() on arrival and dequeue() when the link becomes free.  Packets
// dropped as a consequence of an arrival (tail drop drops the offered
// packet; pushout disciplines may evict a different victim) are reported
// through the DropSink the port installs once at construction — enqueue()
// itself returns nothing, so the accept path never materialises a
// drop-return container.

#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "net/packet.h"
#include "sim/units.h"

namespace ispn::sched {

class Scheduler {
 public:
  /// Receives every packet the discipline drops after accepting custody:
  /// tail drops and pushout victims at enqueue time, and §10 stale
  /// discards at dequeue time — (victim, now).  The victim still carries
  /// its own arrival stamp (enqueued_at) — a pushout victim was stamped
  /// when *it* arrived, not at the arrival that evicted it.  When the sink
  /// returns, the victim is destroyed (returning pooled storage to its
  /// PacketPool) unless the sink moved it out.
  using DropSink = std::function<void(net::PacketPtr, sim::Time)>;

  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Installs the drop observer.  Called once by the owning Port right
  /// after construction; without a sink, victims are silently destroyed
  /// (standalone scheduler use in tests/benches).  Virtual so composite
  /// disciplines (PriorityScheduler) can forward the sink to children.
  virtual void set_drop_sink(DropSink sink) { drop_sink_ = std::move(sink); }

  /// Offers a packet at simulated time `now`.  Precondition: the packet's
  /// enqueued_at has already been stamped by the caller (the port stamps
  /// every offered packet before calling us, whether or not the arrival
  /// ends up evicting it or another packet).  Any drops this arrival
  /// causes are reported to the DropSink before enqueue() returns.
  virtual void enqueue(net::PacketPtr p, sim::Time now) = 0;

  /// Removes and returns the next packet to transmit, or nullptr if no
  /// packet is currently eligible.  `now` is the instant transmission
  /// would begin.
  [[nodiscard]] virtual net::PacketPtr dequeue(sim::Time now) = 0;

  /// Earliest instant at which a packet will be eligible for
  /// transmission.  Work-conserving disciplines (the default) always
  /// answer `now`; non-work-conserving ones (Jitter-EDD) may answer a
  /// future time, and the port re-polls then.  Meaningless when empty().
  [[nodiscard]] virtual sim::Time next_eligible(sim::Time now) const {
    return now;
  }

  /// Removes every queued packet, handing each to `sink` (link teardown:
  /// the owning port flushes its queue when its link fails).  Flushed
  /// packets do NOT go through the DropSink — the caller owns their
  /// accounting (they are link casualties, not congestion losses).  The
  /// default walks the normal dequeue path; disciplines with dequeue-time
  /// side effects (FIFO+ averages, wait observers, stale discards)
  /// override or suppress them so a flush never perturbs measured state.
  virtual void flush(const std::function<void(net::PacketPtr, sim::Time)>& sink,
                     sim::Time now) {
    while (!empty()) {
      net::PacketPtr p = dequeue(now);
      if (p == nullptr) break;  // remainder self-discarded via the DropSink
      sink(std::move(p), now);
    }
  }

  /// True when no packet is queued.
  [[nodiscard]] virtual bool empty() const = 0;

  /// Number of queued packets.
  [[nodiscard]] virtual std::size_t packets() const = 0;

  /// Total queued bits.
  [[nodiscard]] virtual sim::Bits backlog_bits() const = 0;

 protected:
  /// Reports one victim to the installed sink (cold path: only ever runs
  /// when the buffer overflows).  Destroys the victim when no sink is
  /// installed.
  void drop(net::PacketPtr victim, sim::Time now) {
    if (drop_sink_) drop_sink_(std::move(victim), now);
  }

 private:
  DropSink drop_sink_;
};

}  // namespace ispn::sched
