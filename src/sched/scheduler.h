// The queueing-discipline interface used by every output port.
//
// A Scheduler owns the packets queued at one output port.  The port calls
// enqueue() on arrival and dequeue() when the link becomes free.  enqueue()
// returns any packets dropped as a consequence (tail drop returns the
// offered packet; pushout disciplines may return a different victim), so
// the port can account for drops uniformly.

#pragma once

#include <cstddef>
#include <vector>

#include "net/packet.h"
#include "sim/units.h"

namespace ispn::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Offers a packet at simulated time `now` (the packet's enqueued_at has
  /// already been stamped by the port).  Returns the packets dropped as a
  /// result of this arrival — empty when the packet was accepted and nothing
  /// was evicted.
  [[nodiscard]] virtual std::vector<net::PacketPtr> enqueue(net::PacketPtr p,
                                                            sim::Time now) = 0;

  /// Removes and returns the next packet to transmit, or nullptr if no
  /// packet is currently eligible.  `now` is the instant transmission
  /// would begin.
  [[nodiscard]] virtual net::PacketPtr dequeue(sim::Time now) = 0;

  /// Earliest instant at which a packet will be eligible for
  /// transmission.  Work-conserving disciplines (the default) always
  /// answer `now`; non-work-conserving ones (Jitter-EDD) may answer a
  /// future time, and the port re-polls then.  Meaningless when empty().
  [[nodiscard]] virtual sim::Time next_eligible(sim::Time now) const {
    return now;
  }

  /// True when no packet is queued.
  [[nodiscard]] virtual bool empty() const = 0;

  /// Number of queued packets.
  [[nodiscard]] virtual std::size_t packets() const = 0;

  /// Total queued bits.
  [[nodiscard]] virtual sim::Bits backlog_bits() const = 0;
};

}  // namespace ispn::sched
