// Weighted Fair Queueing (packetized GPS) with exact fluid virtual time.
//
// This is the paper's §4 isolation mechanism.  Each flow α has a clock rate
// (weight) φ_α in bits/second.  Packet k of flow α arriving at time a gets
// tags
//
//     S = max(V(a), F_prev(α)),     F = S + L / φ_α,
//
// and the packetized scheduler transmits, whenever the link frees, the
// queued packet with the smallest finish tag F (ties broken by arrival
// order).  The fluid virtual time V(t) — slope-cached advance through the
// fluid departure epochs — is the shared sched::FluidClock; WFQ's flows
// have weights frozen while backlogged, which is the clock's kPinned
// flow-0 policy.
//
// Hot-path layout: per-flow state is a dense vector indexed by a compact
// slot (util::SlotMap assigns each flow id the lowest free slot on first
// sight, so memory scales with flows seen, never with max(FlowId)) with
// each flow's FIFO a power-of-two ring, and both orderings — fluid departure epochs (inside
// FluidClock) and head-of-flow finish tags — are indexed structures
// holding exactly one entry per flow, re-keyed in place.  The ordering
// backend is selectable at construction (Config::order_backend): an
// indexed min-heap, or a calendar queue bucketed over virtual time whose
// re-keys are O(1) amortized instead of full-depth sifts.  Both backends
// produce byte-identical departure sequences (same (finish, order) total
// order — proven by tests/test_order_backend_diff.cc), so the choice is
// purely a performance knob.  No red-black trees, no per-node allocation,
// no stale-entry traffic.
//
// With Σ φ_α ≤ C and a flow conforming to an (r, b) token bucket with
// φ = r, the flow's queueing delay is bounded by the Parekh–Gallager bound
// regardless of all other traffic — the property tests exercise this.

#pragma once

#include <cstdint>

#include "sched/fluid_clock.h"
#include "sched/keys.h"
#include "sched/scheduler.h"
#include "util/indexed_heap.h"
#include "util/ring.h"
#include "util/slot_map.h"

namespace ispn::sched {

class WfqScheduler final : public Scheduler {
 public:
  struct Config {
    sim::Rate link_rate = sim::paper::kLinkRate;
    std::size_t capacity_pkts = 200;
    /// Weight assigned on first sight of a flow that was never add_flow()ed.
    /// Useful for egalitarian Fair Queueing (Table 1/2 use equal weights).
    double default_weight = 1.0;
    /// Ordering structure for the fluid epochs and head finish tags; every
    /// backend departs packets in the identical order.
    OrderBackend order_backend = OrderBackend::kAuto;
  };

  explicit WfqScheduler(Config config);

  /// Registers `flow` with weight (clock rate) `weight`, in bits/second for
  /// guaranteed-service semantics; any common scale works for pure sharing.
  void add_flow(net::FlowId flow, double weight);

  /// The flow's weight (default_weight if auto-registered).
  [[nodiscard]] double weight(net::FlowId flow) const;

  /// Current virtual time (advanced to `now`).  Exposed for tests.
  [[nodiscard]] double virtual_time(sim::Time now);

  /// Sum of weights of fluid-backlogged flows (diagnostic).
  [[nodiscard]] double active_weight() const { return clock_.active_weight(); }

  /// Dense per-flow slots in use — scales with flows seen, not max(FlowId)
  /// (the sparse-id regression test pins this).
  [[nodiscard]] std::size_t flow_slots() const { return flows_.size(); }

  void enqueue(net::PacketPtr p, sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] bool empty() const override { return total_packets_ == 0; }
  [[nodiscard]] std::size_t packets() const override { return total_packets_; }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

 private:
  struct Tagged {
    net::PacketPtr packet;
    double finish = 0;        // virtual finish tag F
    std::uint64_t order = 0;  // global arrival order (tie break)
  };
  struct Flow {
    double weight = 1.0;
    double inv_weight = 1.0;  // cached 1/weight: tag math without division
    double last_finish = 0;   // F of the most recently arrived packet
    util::Ring<Tagged> queue;  // per-flow packets, FIFO within flow
  };

  Flow& flow_ref(std::uint32_t idx);

  Config config_;
  util::SlotMap slots_;      // flow id -> compact slot
  std::vector<Flow> flows_;  // dense, indexed by compact slot

  // Fluid system state: the shared V(t) machinery.
  FluidClock clock_;

  // Packetized selection: one head-of-flow finish tag per backlogged flow.
  HeadOrder heads_;

  std::uint64_t arrivals_ = 0;
  std::size_t total_packets_ = 0;
  sim::Bits bits_ = 0;
};

}  // namespace ispn::sched
