// Weighted Fair Queueing (packetized GPS) with exact fluid virtual time.
//
// This is the paper's §4 isolation mechanism.  Each flow α has a clock rate
// (weight) φ_α in bits/second.  The fluid GPS reference system serves every
// backlogged flow at rate  C·φ_α / Σ_{β backlogged} φ_β.  Virtual time V(t)
// is piecewise linear with slope C / Σ_{β∈B(t)} φ_β and is frozen while the
// fluid system is idle.  Packet k of flow α arriving at time a gets tags
//
//     S = max(V(a), F_prev(α)),     F = S + L / φ_α,
//
// and the packetized scheduler transmits, whenever the link frees, the
// queued packet with the smallest finish tag F (ties broken by arrival
// order).  Tracking V(t) exactly requires knowing when flows empty *in the
// fluid system*: we keep the fluid-backlogged flows ordered by their
// largest finish tag and advance V through those departure epochs
// ("iterated deletion", Demers–Keshav–Shenker / Parekh–Gallager).
//
// Hot-path layout: per-flow state is a dense vector indexed by flow id
// (ids are small and assigned sequentially) with each flow's FIFO a
// power-of-two ring, and both orderings — fluid departure epochs and
// head-of-flow finish tags — are indexed min-heaps (util/indexed_heap.h)
// holding exactly one entry per flow, re-keyed in place.  No red-black
// trees, no per-node allocation, no stale-entry traffic.
//
// With Σ φ_α ≤ C and a flow conforming to an (r, b) token bucket with
// φ = r, the flow's queueing delay is bounded by the Parekh–Gallager bound
// regardless of all other traffic — the property tests exercise this.

#pragma once

#include <cstdint>
#include <functional>

#include "sched/scheduler.h"
#include "util/indexed_heap.h"
#include "util/ring.h"

namespace ispn::sched {

class WfqScheduler final : public Scheduler {
 public:
  struct Config {
    sim::Rate link_rate = sim::paper::kLinkRate;
    std::size_t capacity_pkts = 200;
    /// Weight assigned on first sight of a flow that was never add_flow()ed.
    /// Useful for egalitarian Fair Queueing (Table 1/2 use equal weights).
    double default_weight = 1.0;
  };

  explicit WfqScheduler(Config config);

  /// Registers `flow` with weight (clock rate) `weight`, in bits/second for
  /// guaranteed-service semantics; any common scale works for pure sharing.
  void add_flow(net::FlowId flow, double weight);

  /// The flow's weight (default_weight if auto-registered).
  [[nodiscard]] double weight(net::FlowId flow) const;

  /// Current virtual time (advanced to `now`).  Exposed for tests.
  [[nodiscard]] double virtual_time(sim::Time now);

  /// Sum of weights of fluid-backlogged flows (diagnostic).
  [[nodiscard]] double active_weight() const { return active_weight_; }

  [[nodiscard]] std::vector<net::PacketPtr> enqueue(net::PacketPtr p,
                                                    sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] bool empty() const override { return total_packets_ == 0; }
  [[nodiscard]] std::size_t packets() const override { return total_packets_; }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

 private:
  struct Tagged {
    net::PacketPtr packet;
    double finish = 0;        // virtual finish tag F
    std::uint64_t order = 0;  // global arrival order (tie break)
  };
  struct Flow {
    double weight = 1.0;
    double inv_weight = 1.0;  // cached 1/weight: tag math without division
    double last_finish = 0;   // F of the most recently arrived packet
    bool fluid_backlogged = false;
    util::Ring<Tagged> queue;  // per-flow packets, FIFO within flow
  };
  struct HeadKey {
    double finish = 0;
    std::uint64_t order = 0;
  };
  struct HeadLess {
    bool operator()(const HeadKey& a, const HeadKey& b) const {
      if (a.finish != b.finish) return a.finish < b.finish;
      return a.order < b.order;
    }
  };

  /// Advances V(t) from last_update_ to `now`, processing fluid departures.
  void advance_virtual_time(sim::Time now);

  /// Dense slot for a flow id.  Non-negative ids map to id+1; slot 0 is a
  /// shared anonymous bucket for packets with no flow (kNoFlow), so a
  /// negative id can never index out of bounds (the seed's std::map
  /// accepted any id; this preserves that robustness).
  static std::uint32_t slot_of(net::FlowId id) {
    return id >= 0 ? static_cast<std::uint32_t>(id) + 1 : 0;
  }

  Flow& flow_ref(std::uint32_t idx);

  Config config_;
  std::vector<Flow> flows_;  // dense, indexed by slot_of(flow)

  // Fluid system state.  fluid_ holds one entry per fluid-backlogged flow,
  // keyed by its largest finish tag.  The V(t) slope and its reciprocal
  // are recomputed only when the backlogged-weight sum changes
  // (slope_dirty_), so steady-state advance performs no division.
  double vtime_ = 0;
  sim::Time last_update_ = 0;
  double active_weight_ = 0;
  double slope_ = 0;      // link_rate / active_weight_
  double inv_slope_ = 0;  // active_weight_ / link_rate
  bool slope_dirty_ = true;
  util::IndexedDaryHeap<double, std::less<double>> fluid_;

  // Packetized selection: one head-of-flow finish tag per backlogged flow.
  util::IndexedDaryHeap<HeadKey, HeadLess> heads_;

  std::uint64_t arrivals_ = 0;
  std::size_t total_packets_ = 0;
  sim::Bits bits_ = 0;
};

}  // namespace ispn::sched
