// FIFO queueing with tail drop.
//
// The paper's §5 insight: within a class of clients with similar service
// desires, deadline scheduling degenerates to FIFO, and FIFO *shares* jitter
// across the flows that created it — the 99.9th-percentile delay under FIFO
// is far below WFQ's at identical utilisation (Table 1).

#pragma once

#include <cstddef>

#include "sched/scheduler.h"
#include "util/ring.h"

namespace ispn::sched {

class FifoScheduler final : public Scheduler {
 public:
  /// `capacity_pkts` caps the queue length; arrivals beyond it are dropped
  /// (tail drop), matching the paper's 200-packet switch buffers.
  explicit FifoScheduler(std::size_t capacity_pkts = 200)
      : capacity_(capacity_pkts) {}

  void enqueue(net::PacketPtr p, sim::Time now) override;
  [[nodiscard]] net::PacketPtr dequeue(sim::Time now) override;
  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] std::size_t packets() const override { return queue_.size(); }
  [[nodiscard]] sim::Bits backlog_bits() const override { return bits_; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  util::Ring<net::PacketPtr> queue_;
  sim::Bits bits_ = 0;
};

}  // namespace ispn::sched
