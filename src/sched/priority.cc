#include "sched/priority.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::sched {

PriorityScheduler::PriorityScheduler(
    std::vector<std::unique_ptr<Scheduler>> children, Classifier classify)
    : children_(std::move(children)), classify_(std::move(classify)) {
  assert(!children_.empty());
  if (!classify_) {
    const std::size_t top = children_.size() - 1;
    classify_ = [top](const net::Packet& p) {
      return std::min<std::size_t>(p.priority, top);
    };
  }
}

void PriorityScheduler::set_drop_sink(DropSink sink) {
  // Each child gets its own copy; victims surface to the port directly
  // from whichever level evicted them.
  for (auto& child : children_) child->set_drop_sink(sink);
}

void PriorityScheduler::enqueue(net::PacketPtr p, sim::Time now) {
  const std::size_t level = classify_(*p);
  assert(level < children_.size());
  children_[level]->enqueue(std::move(p), now);
}

net::PacketPtr PriorityScheduler::dequeue(sim::Time now) {
  for (auto& child : children_) {
    if (!child->empty()) return child->dequeue(now);
  }
  return nullptr;
}

bool PriorityScheduler::empty() const {
  return std::all_of(children_.begin(), children_.end(),
                     [](const auto& c) { return c->empty(); });
}

std::size_t PriorityScheduler::packets() const {
  std::size_t n = 0;
  for (const auto& c : children_) n += c->packets();
  return n;
}

sim::Bits PriorityScheduler::backlog_bits() const {
  sim::Bits b = 0;
  for (const auto& c : children_) b += c->backlog_bits();
  return b;
}

}  // namespace ispn::sched
