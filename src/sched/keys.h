// Shared POD ordering keys for the scheduler family.
//
// Every discipline in this layer orders packets by a (double key, arrival
// order) pair, and the slab-parked ones additionally carry the packet's
// PacketSlab slot.  These structs were historically re-declared per
// scheduler (fifo_plus, virtual_clock, wfq, unified); they live here once
// so the heap-entry layout and tie-break semantics cannot drift apart.

#pragma once

#include <cstdint>

#include "net/packet.h"
#include "util/calendar_queue.h"

namespace ispn::sched {

/// Which virtual-time ordering structure a scheduler uses (heap vs
/// calendar queue) — re-exported so configs can say sched::OrderBackend.
using util::OrderBackend;

/// Key of a flow's head packet in the packetized WFQ selection: smallest
/// (finish tag, arrival order) transmits next.
struct HeadKey {
  double finish = 0;
  std::uint64_t order = 0;
};

struct HeadLess {
  bool operator()(const HeadKey& a, const HeadKey& b) const {
    if (a.finish != b.finish) return a.finish < b.finish;
    return a.order < b.order;
  }
};

/// Virtual-time projection of a HeadKey, for calendar-queue bucketing.
/// HeadLess orders primarily by this projection (ties by arrival order),
/// which is exactly the consistency the calendar requires.
struct HeadProject {
  double operator()(const HeadKey& k) const { return k.finish; }
};

/// The selectable head-of-flow ordering used by WFQ and unified.
using HeadOrder = util::OrderIndex<HeadKey, HeadLess, HeadProject>;

/// Heap entry for a packet parked in a PacketSlab: 24 trivially-copyable
/// bytes ordered by (key, order), so sifts move raw words instead of
/// unique_ptrs.  `key` is whatever the discipline orders by — expected
/// arrival (FIFO+, unified's predicted classes), stamp (VirtualClock).
struct SlabEntry {
  double key = 0;
  std::uint64_t order = 0;      // arrival tie-break
  std::uint32_t slot = 0;       // packet's PacketSlab slot
};

struct SlabEntryLess {
  bool operator()(const SlabEntry& a, const SlabEntry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.order < b.order;
  }
};

}  // namespace ispn::sched
