// The simulation kernel: a clock plus an event queue.
//
// Usage:
//   Simulator sim;
//   sim.at(1.0, [&]{ ... });        // absolute time
//   sim.after(0.5, [&]{ ... });     // relative to now()
//   sim.run_until(600.0);
//
// The kernel is strictly single-threaded and deterministic: events at equal
// times fire in scheduling order.

#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/units.h"

namespace ispn::sim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `action` at absolute time `at`.  Scheduling in the past is a
  /// programming error; the action is clamped to fire at now().
  EventId at(Time at, EventAction action);

  /// Schedules `action` `delay` seconds from now.
  EventId after(Duration delay, EventAction action);

  /// Cancels a pending event.  Returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or the clock passes `end`.  Events scheduled
  /// exactly at `end` still fire.  Returns the number of events processed.
  std::uint64_t run_until(Time end);

  /// Runs until the queue drains.
  std::uint64_t run();

  /// Executes at most one pending event.  Returns false if none remain.
  bool step();

  /// True if no further events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Number of pending events (diagnostic).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events processed so far (diagnostic).
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ispn::sim
