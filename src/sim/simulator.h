// The simulation kernel: a clock plus an event queue.
//
// Usage:
//   Simulator sim;
//   sim.at(1.0, [&]{ ... });        // absolute time
//   sim.after(0.5, [&]{ ... });     // relative to now()
//   sim.run_until(600.0);
//
// The kernel is strictly single-threaded and deterministic: events at equal
// times fire in scheduling order.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_queue.h"
#include "sim/units.h"

namespace ispn::sim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `action` (any void() callable; closures up to
  /// InlineAction::kCapacity bytes are stored without allocation) at
  /// absolute time `at`.  Scheduling in the past is a programming error;
  /// the action is clamped to fire at now().
  template <typename F>
  EventId at(Time at, F&& action) {
    assert(at >= now_ - 1e-12 && "scheduling into the past");
    return queue_.schedule(std::max(at, now_), std::forward<F>(action));
  }

  /// Schedules `action` `delay` seconds from now.
  template <typename F>
  EventId after(Duration delay, F&& action) {
    assert(delay >= 0 && "negative delay");
    return queue_.schedule(now_ + std::max(delay, 0.0),
                           std::forward<F>(action));
  }

  /// Cancels a pending event.  Returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or the clock passes `end`.  Events scheduled
  /// exactly at `end` still fire.  Returns the number of events processed.
  std::uint64_t run_until(Time end);

  /// Runs until the queue drains.
  std::uint64_t run();

  /// Executes at most one pending event.  Returns false if none remain.
  bool step();

  /// True if no further events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Number of pending events (diagnostic).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events processed so far (diagnostic).
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ispn::sim
