// The simulation kernel: a clock plus an event queue.
//
// Usage:
//   Simulator sim;                  // EventBackend::kAuto by default
//   sim.at(1.0, [&]{ ... });        // absolute time
//   sim.after(0.5, [&]{ ... });     // relative to now()
//   auto t = sim.make_timer([&]{ ... });  // persistent timer (sim/timer.h)
//   sim.run_until(600.0);
//
// The kernel is strictly single-threaded and deterministic: events at equal
// times fire in scheduling order, and the ordering backend (heap, timing
// wheel, or auto) never changes the firing order — only the cost of
// maintaining it.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_queue.h"
#include "sim/units.h"

namespace ispn::sim {

class Timer;

class Simulator {
 public:
  explicit Simulator(EventBackend backend = EventBackend::kAuto)
      : queue_(backend) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `action` (any void() callable; closures up to
  /// InlineAction::kCapacity bytes are stored without allocation) at
  /// absolute time `at`.  Scheduling in the past is a programming error;
  /// the action is clamped to fire at now().
  template <typename F>
  EventId at(Time at, F&& action) {
    assert(at >= now_ - 1e-12 && "scheduling into the past");
    return queue_.schedule(std::max(at, now_), std::forward<F>(action));
  }

  /// Schedules `action` `delay` seconds from now.
  template <typename F>
  EventId after(Duration delay, F&& action) {
    assert(delay >= 0 && "negative delay");
    return queue_.schedule(now_ + std::max(delay, 0.0),
                           std::forward<F>(action));
  }

  /// Cancels a pending event.  Returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Creates a persistent re-armable timer bound to `action`.  Defined in
  /// sim/timer.h (include it at call sites).
  template <typename F>
  Timer make_timer(F&& action);

  /// Runs until the queue drains or the clock passes `end`.  Events scheduled
  /// exactly at `end` still fire.  Returns the number of events processed.
  std::uint64_t run_until(Time end);

  /// Runs every event strictly before `end`, leaving events at `end`
  /// itself pending and NOT advancing the clock to `end`.  This is the
  /// shard-window primitive: a domain executes the half-open window
  /// [m*L, (m+1)*L) with run_before((m+1)*L) so that barrier-time events
  /// stay pending for the next round and cross-shard arrivals landing
  /// exactly on the boundary can still be scheduled (now() never passes
  /// the earliest such arrival).  Returns the number of events processed.
  std::uint64_t run_before(Time end);

  /// Runs until the queue drains.
  std::uint64_t run();

  /// Executes at most one pending event.  Returns false if none remain.
  bool step();

  /// True if no further events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Number of pending events (diagnostic).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events processed so far (diagnostic).
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// The underlying event queue (timer plumbing, slab diagnostics).
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ispn::sim
