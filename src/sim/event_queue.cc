#include "sim/event_queue.h"

#include <cassert>

namespace ispn::sim {

bool EventQueue::cancel(EventId id) {
  const std::uint64_t slot_part = id >> 32;
  if (slot_part == 0 || slot_part > slots_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(slot_part - 1);
  const auto gen = static_cast<std::uint32_t>(id);
  Slot& s = slots_[slot];
  // Persistent timer slots are managed through sim::Timer only; a stale
  // one-shot id whose slot was recycled into a timer must not be able to
  // tear the timer down.
  if (s.persistent) return false;
  if (!s.live || s.gen != gen) return false;  // already fired or cancelled
  release_slot(slot);
  --live_;
  return true;
}

const EventQueue::Key* EventQueue::drop_stale() {
  if (on_wheel_) {
    for (;;) {
      const Key* k = wheel_.peek();
      if (k != nullptr && key_live(*k)) return k;
      assert(k != nullptr && "live_ > 0 but wheel empty");
      wheel_.pop_front();
    }
  }
  for (;;) {
    assert(!heap_.empty() && "live_ > 0 but heap empty");
    if (key_live(heap_.top())) return &heap_.top();
    heap_.pop();
  }
}

void EventQueue::migrate_to_wheel() {
  wheel_.reset(tick_of(last_pop_time_));
  for (const Key& k : heap_.raw()) wheel_.insert(k, tick_of(k.time));
  heap_.clear();
  on_wheel_ = true;
}

void EventQueue::escalate_resolution() {
  ticks_per_sec_ *= 64.0;  // one escalation step finer
  adapt_at_ *= 64;         // next step only after a comparable pile-up
  // scratch is local: escalations happen O(log) times per run, never on
  // the steady-state path, so this allocation is outside the zero-alloc
  // window the soak tests pin.
  std::vector<Key> scratch;
  wheel_.drain_into(scratch, tick_of(last_pop_time_));
  for (const Key& k : scratch) {
    // Dead keys re-file too; they are skimmed as usual when they surface.
    wheel_.insert(k, tick_of(k.time));
  }
}

Time EventQueue::next_time() const {
  assert(live_ > 0);
  // Skimming stale keys (and advancing the wheel cursor) mutates only the
  // ordering structure, not observable state; the first live key
  // determines the next time.
  return const_cast<EventQueue*>(this)->drop_stale()->time;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale();
  return pop_front_live();
}

bool EventQueue::pop_if_before(Time end, bool inclusive, Fired& out) {
  if (live_ == 0) return false;
  const Time t = drop_stale()->time;
  if (inclusive ? t > end : t >= end) return false;
  out = pop_front_live();
  return true;
}

EventQueue::Fired EventQueue::pop_front_live() {
  const Key k = on_wheel_ ? wheel_.pop_front() : heap_.pop();
  assert(key_live(k));
  if (on_wheel_) {
    // Overlap upcoming events' slab-slot DRAM misses with the current
    // event's execution: at a million pending timers the slab is far
    // beyond cache and the very next access to it is the key_live() /
    // dispatch load for the entry now at the run head.  Two entries deep:
    // the +1 slot is needed within one event (~hundreds of ns), the +2
    // prefetch gets two full events of lead.  Pure hints; ordering and
    // observable state are untouched.
    if (const Key* nk = wheel_.peek_ready()) {
      // The hint one pop ago covered nk's slot line, so reading it now is
      // usually cache-warm; chase one level deeper and warm the
      // persistent action it will invoke (the timer callback living
      // inside a source object — cold at million-flow scale).
      const Slot& ns = slots_[nk->slot];
      if (ns.persistent && ns.external != nullptr) {
        __builtin_prefetch(ns.external);
      }
      // And hint the slot after it, giving that line a full event of
      // lead before its own read above.
      if (const Key* nk2 = wheel_.peek_ready(1)) {
        __builtin_prefetch(&slots_[nk2->slot]);
      }
    }
  }
  Slot& s = slots_[k.slot];
  last_pop_time_ = k.time;
  Fired fired;
  fired.time = k.time;
  if (s.persistent) {
    // Marked idle *before* the action runs so the action can re-arm; the
    // action itself lives in the Timer object, immune to slab growth.
    s.live = false;
    fired.in_place = s.external;
  } else {
    fired.action = std::move(s.action);
    release_slot(k.slot);
  }
  --live_;
  if (live_ == 0 && backend_ == EventBackend::kAuto && on_wheel_) {
    // Free reset point: nothing live to migrate, so drop any stale keys
    // and fall back to the heap (the better backend while small).
    wheel_.reset(tick_of(last_pop_time_));
    on_wheel_ = false;
  }
  return fired;
}

TimerSlot EventQueue::create_timer(InlineAction* action) {
  assert(action != nullptr);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.persistent = true;
  s.external = action;
  return slot;
}

void EventQueue::rebind_timer(TimerSlot t, InlineAction* action) {
  assert(t < slots_.size() && slots_[t].persistent && action != nullptr);
  slots_[t].external = action;
}

void EventQueue::destroy_timer(TimerSlot t) {
  assert(t < slots_.size() && slots_[t].persistent);
  if (slots_[t].live) --live_;  // pending key goes stale via the gen bump
  release_slot(t);
}

void EventQueue::arm_timer(TimerSlot t, Time at) {
  assert(t < slots_.size() && slots_[t].persistent);
  Slot& s = slots_[t];
  ++s.gen;  // supersedes any pending key atomically
  if (!s.live) {
    s.live = true;
    ++live_;
  }
  push_key(Key{at, next_seq_++, t, s.gen});
}

bool EventQueue::disarm_timer(TimerSlot t) {
  assert(t < slots_.size() && slots_[t].persistent);
  Slot& s = slots_[t];
  if (!s.live) return false;
  s.live = false;
  ++s.gen;  // pending key goes stale
  --live_;
  return true;
}

}  // namespace ispn::sim
