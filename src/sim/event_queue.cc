#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace ispn::sim {

EventId EventQueue::schedule(Time at, EventAction action) {
  const EventId id = next_seq_++;
  heap_.push(Entry{at, id, std::move(action)});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_seq_) return false;
  const bool inserted = cancelled_.insert(id).second;
  if (inserted && live_ > 0) --live_;
  return inserted;
}

bool EventQueue::is_cancelled(EventId id) const {
  return cancelled_.contains(id);
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && is_cancelled(heap_.top().id)) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  // drop_dead() is not const; compute emptiness from the live counter, which
  // is kept exact by schedule()/cancel()/pop().
  return live_ == 0;
}

Time EventQueue::next_time() const {
  assert(live_ > 0);
  // Skim over dead entries without mutating: the first live entry determines
  // the next time.  Cancelled entries at the top are rare, so scan via a
  // const_cast-free copy of the lazy-deletion walk done in pop().
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead();
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead();
  assert(!heap_.empty());
  Fired fired{heap_.top().time, std::move(heap_.top().action)};
  heap_.pop();
  --live_;
  return fired;
}

}  // namespace ispn::sim
