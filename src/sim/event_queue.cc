#include "sim/event_queue.h"

#include <cassert>

namespace ispn::sim {

bool EventQueue::cancel(EventId id) {
  const std::uint64_t slot_part = id >> 32;
  if (slot_part == 0 || slot_part > slots_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(slot_part - 1);
  const auto gen = static_cast<std::uint32_t>(id);
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return false;  // already fired or cancelled
  retire(slot);
  return true;
}

void EventQueue::drop_stale() {
  while (!heap_.empty()) {
    const Key& k = heap_.top();
    const Slot& s = slots_[k.slot];
    if (s.live && s.gen == k.gen) return;
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  assert(live_ > 0);
  // Skimming stale keys mutates only the heap, not observable state; the
  // first live key determines the next time.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_stale();
  return self->heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale();
  assert(!heap_.empty());
  const Key k = heap_.pop();
  Slot& s = slots_[k.slot];
  Fired fired{k.time, std::move(s.action)};
  retire(k.slot);
  return fired;
}

}  // namespace ispn::sim
