// A deterministic discrete-event queue.
//
// Events are (time, sequence, action) tuples ordered by time, with the
// insertion sequence number breaking ties so that events scheduled for the
// same instant fire in scheduling order.
//
// Engine layout (allocation-free in steady state):
//
//   * Actions live in a slab of generation-stamped slots recycled through a
//     free list.  An EventId encodes (slot index, generation); cancel() is
//     an O(1) generation check that frees the slot immediately — there is
//     no cancelled-id set to probe on every pop, and a cancelled id can
//     never leak (the stale heap key is discarded by generation mismatch
//     when it surfaces).
//   * Ordering lives in a 4-ary min-heap of small (time, seq, slot, gen)
//     keys — contiguous, shallow, and cheap to sift.
//   * Actions are InlineAction: closures up to 48 bytes are stored in the
//     slot itself; larger ones heap-box once (the cold-path escape hatch).
//
// Generations are 32-bit and wrap after 2^32 schedules of one slot; with a
// handful of outstanding ids per slot (ports hold at most one retry timer)
// a stale id matching a wrapped generation is not a practical concern.

#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_action.h"
#include "sim/units.h"
#include "util/dary_heap.h"

namespace ispn::sim {

/// Action run when an event fires.
using EventAction = InlineAction;

/// Opaque identifier for a scheduled event; usable with EventQueue::cancel().
using EventId = std::uint64_t;

/// Sentinel returned when no event was scheduled.
inline constexpr EventId kInvalidEventId = 0;

/// Slab-allocated min-heap of timed events with stable same-time ordering,
/// O(log n) schedule/pop and O(1) cancel.  Not thread-safe: the simulator
/// is single-threaded by design.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` (any void() callable) to run at absolute time `at`.
  /// Returns a handle that can later be passed to cancel().
  template <typename F>
  EventId schedule(Time at, F&& action) {
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      // Keep the free list able to hold every slot without reallocating:
      // retire() must stay allocation-free even when a burst of one-shot
      // events drains and the freelist grows past any size seen before
      // (the soak test pins this with the counting allocator).
      free_.reserve(slots_.capacity());
    } else {
      slot = free_.back();
      free_.pop_back();
    }
    Slot& s = slots_[slot];
    assert(!s.live);
    s.action = InlineAction(std::forward<F>(action));
    s.live = true;
    heap_.push(Key{at, next_seq_++, slot, s.gen});
    ++live_;
    return make_id(slot, s.gen);
  }

  /// Cancels a previously scheduled event.  Returns true if the event was
  /// still pending; the slot and its captured state are released
  /// immediately and the id can never match a recycled slot (generation
  /// check).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest live event, advancing past any stale
  /// heap keys.  Precondition: !empty().
  struct Fired {
    Time time = 0;
    EventAction action;
  };
  Fired pop();

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_ - 1; }

  /// Slab capacity / recycled-slot count (diagnostics; tests pin slot
  /// reuse and leak-freedom through these).
  [[nodiscard]] std::size_t slab_slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t free_slots() const { return free_.size(); }

 private:
  struct Slot {
    InlineAction action;
    std::uint32_t gen = 1;  // bumped on every fire/cancel
    bool live = false;
  };
  struct Key {
    Time time = 0;
    std::uint64_t seq = 0;  // global tie-break: same-time FIFO
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct KeyLess {
    bool operator()(const Key& a, const Key& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    // slot+1 keeps every valid id distinct from kInvalidEventId.
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }

  /// Releases a slot back to the free list, invalidating outstanding ids.
  void retire(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.live = false;
    ++s.gen;
    s.action.reset();
    free_.push_back(slot);
    --live_;
  }

  /// Discards heap keys whose slot has been fired/cancelled since.
  void drop_stale();

  std::vector<Slot> slots_;         // slab; addressed by index only
  std::vector<std::uint32_t> free_;
  util::DaryHeap<Key, KeyLess, 4> heap_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace ispn::sim
