// A deterministic discrete-event queue.
//
// Events are (time, sequence, action) tuples ordered by time, with the
// insertion sequence number breaking ties so that events scheduled for the
// same instant fire in scheduling order.  Cancellation is supported through
// lazy deletion: cancel() marks the handle and pop() skips dead entries.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/units.h"

namespace ispn::sim {

/// Action run when an event fires.
using EventAction = std::function<void()>;

/// Opaque identifier for a scheduled event; usable with EventQueue::cancel().
using EventId = std::uint64_t;

/// Sentinel returned when no event was scheduled.
inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of timed events with stable same-time ordering and O(log n)
/// schedule/pop.  Not thread-safe: the simulator is single-threaded by design.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` to run at absolute time `at`.  Returns a handle that
  /// can later be passed to cancel().
  EventId schedule(Time at, EventAction action);

  /// Marks a previously scheduled event as cancelled.  Returns true if the
  /// event was still pending.  Cancelled events are skipped by pop().
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest live event's action, advancing past any
  /// cancelled entries.  Precondition: !empty().
  struct Fired {
    Time time = 0;
    EventAction action;
  };
  Fired pop();

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  struct Entry {
    Time time = 0;
    EventId id = kInvalidEventId;  // doubles as the tie-breaking sequence
    // Heap entries own their action; cancelled ones drop it eagerly to free
    // captured state.
    mutable EventAction action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void drop_dead();
  [[nodiscard]] bool is_cancelled(EventId id) const;

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace ispn::sim
