// A deterministic discrete-event queue.
//
// Events are (time, sequence, action) tuples ordered by time, with the
// insertion sequence number breaking ties so that events scheduled for the
// same instant fire in scheduling order.
//
// Engine layout (allocation-free in steady state):
//
//   * Actions live in a slab of generation-stamped slots recycled through a
//     free list.  An EventId encodes (slot index, generation); cancel() is
//     an O(1) generation check that frees the slot immediately — there is
//     no cancelled-id set to probe on every pop, and a cancelled id can
//     never leak (the stale ordering key is discarded by generation
//     mismatch when it surfaces).
//   * Ordering lives in one of two interchangeable backends holding small
//     (time, seq, slot, gen) keys:
//       - EventBackend::kHeap  — a 4-ary min-heap; O(log n) sift, the
//         better constant below a few dozen pending events;
//       - EventBackend::kWheel — a hierarchical timing wheel
//         (util/timing_wheel.h); O(1) insert with lazy cascade, the
//         winner at the hundreds-to-thousands of pending events that
//         multi-hop Table runs keep in flight;
//       - EventBackend::kAuto  — starts on the heap, migrates every key
//         to the wheel when the pending count first exceeds
//         kAutoWheelThreshold, and falls back to the heap when the queue
//         drains empty (a free reset point: nothing to migrate).
//     Both backends pop in the identical (time, seq) total order — proven
//     byte-for-byte by tests/test_event_backend_diff.cc — so the knob is
//     purely a performance choice.
//   * Actions are InlineAction: closures up to 48 bytes are stored in the
//     slot itself; larger ones heap-box once (the cold-path escape hatch).
//   * Persistent timers (sim/timer.h) occupy a slab slot for their whole
//     lifetime but keep their action *outside* the slab (in the Timer
//     object, whose address is stable), so re-arming is a pure key insert:
//     no slot churn, no InlineAction reconstruction, and the slot pointer
//     stays valid even if firing the action grows the slab.  Re-arming
//     bumps the slot generation, which atomically invalidates any pending
//     key — arm-over-arm needs no cancel.
//
// Generations are 32-bit and wrap after 2^32 schedules of one slot; with a
// handful of outstanding ids per slot (ports hold at most one retry timer)
// a stale id matching a wrapped generation is not a practical concern.

#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_action.h"
#include "sim/units.h"
#include "util/dary_heap.h"
#include "util/timing_wheel.h"

namespace ispn::sim {

/// Action run when an event fires.
using EventAction = InlineAction;

/// Opaque identifier for a scheduled event; usable with EventQueue::cancel().
using EventId = std::uint64_t;

/// Sentinel returned when no event was scheduled.
inline constexpr EventId kInvalidEventId = 0;

/// Slab slot index of a persistent timer (sim/timer.h owns the lifetime).
using TimerSlot = std::uint32_t;

/// Sentinel for "no timer slot".
inline constexpr TimerSlot kInvalidTimerSlot = ~TimerSlot{0};

/// Real-time ordering structure; see the header comment for the trade-off.
enum class EventBackend : std::uint8_t { kHeap, kWheel, kAuto };

/// Slab-allocated timed-event queue with stable same-time ordering, O(1)
/// cancel, and a heap or timing-wheel ordering backend.  Not thread-safe:
/// the simulator is single-threaded by design.
class EventQueue {
 public:
  explicit EventQueue(EventBackend backend = EventBackend::kAuto)
      : backend_(backend), on_wheel_(backend == EventBackend::kWheel) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` (any void() callable) to run at absolute time `at`.
  /// Returns a handle that can later be passed to cancel().
  template <typename F>
  EventId schedule(Time at, F&& action) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.action = InlineAction(std::forward<F>(action));
    s.live = true;
    push_key(Key{at, next_seq_++, slot, s.gen});
    ++live_;
    return make_id(slot, s.gen);
  }

  /// Cancels a previously scheduled event.  Returns true if the event was
  /// still pending; the slot and its captured state are released
  /// immediately and the id can never match a recycled slot (generation
  /// check).  Persistent timer slots are not cancellable through ids.
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest live event, advancing past any stale
  /// ordering keys.  For a one-shot event the action is moved out and the
  /// slot retired; for a persistent timer the action is invoked in place
  /// (it lives in the Timer object, not the slab).
  struct Fired {
    Time time = 0;
    EventAction action;               ///< one-shot payload
    EventAction* in_place = nullptr;  ///< persistent timer payload
    void operator()() {
      if (in_place != nullptr) {
        (*in_place)();
      } else {
        action();
      }
    }
  };
  Fired pop();

  /// If the earliest live event fires at or before `end` (strictly before
  /// when `inclusive` is false), pops it into `out` and returns true;
  /// otherwise returns false with the queue untouched.  The simulator's
  /// run loops use this instead of the next_time()+pop() pair: one front
  /// skim per event instead of two, which at millions of events per
  /// second is a measurable share of the dispatch cost.  Pop order is
  /// identical to pop().
  bool pop_if_before(Time end, bool inclusive, Fired& out);

  // --- persistent timers (wrapped by sim::Timer) ---------------------------

  /// Acquires a slot whose action lives at `*action` (a stable address
  /// owned by the caller) for the life of the timer.
  TimerSlot create_timer(InlineAction* action);

  /// Re-points the slot's action (Timer move support).
  void rebind_timer(TimerSlot t, InlineAction* action);

  /// Releases the slot; a pending arm is cancelled.
  void destroy_timer(TimerSlot t);

  /// (Re-)arms the timer for absolute time `at`.  A pending arm is
  /// superseded atomically (generation bump); no cancel round-trip.
  void arm_timer(TimerSlot t, Time at);

  /// Disarms a pending timer.  Returns false if it was not pending (never
  /// armed, already fired, or already disarmed).
  bool disarm_timer(TimerSlot t);

  /// True while an arm is pending (becomes false just before the action
  /// runs, so the action may re-arm).
  [[nodiscard]] bool timer_armed(TimerSlot t) const {
    assert(t < slots_.size() && slots_[t].persistent);
    return slots_[t].live;
  }

  // --- diagnostics ---------------------------------------------------------

  /// Number of live (non-cancelled) events, armed timers included.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_ - 1; }

  /// Slab capacity / recycled-slot count (diagnostics; tests pin slot
  /// reuse and leak-freedom through these).
  [[nodiscard]] std::size_t slab_slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t free_slots() const { return free_.size(); }

  /// The backend requested at construction / the structure currently
  /// holding the keys (kAuto migrates between the two).
  [[nodiscard]] EventBackend backend() const { return backend_; }
  [[nodiscard]] EventBackend active_backend() const {
    return on_wheel_ ? EventBackend::kWheel : EventBackend::kHeap;
  }

  /// kAuto's heap -> wheel migration point (pending count).
  static constexpr std::size_t kAutoWheelThreshold = 64;

  /// Current wheel tick resolution (escalates under load; diagnostic).
  [[nodiscard]] double ticks_per_sec() const { return ticks_per_sec_; }

 private:
  struct Slot {
    InlineAction action;             ///< one-shot payload
    InlineAction* external = nullptr;  ///< persistent payload (Timer-owned)
    std::uint32_t gen = 1;  ///< bumped on every retire / (re-)arm
    bool live = false;      ///< one-shot pending / timer armed
    bool persistent = false;
  };
  struct Key {
    Time time = 0;
    std::uint64_t seq = 0;  // global tie-break: same-time FIFO
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct KeyLess {
    bool operator()(const Key& a, const Key& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };
  using Wheel = util::TimingWheel<Key, KeyLess>;

  /// Wheel resolution: 2^17 ticks per second (~7.6 us) at rest.  Fine
  /// enough that distinct transmission instants land in distinct buckets
  /// (a 1 Mbit/s link transmits one packet per ~131 ticks), coarse enough
  /// that typical horizons need only two or three wheel levels — sub-tick
  /// coincidences are resolved exactly by the sorted run, so resolution is
  /// purely a performance knob.  A run that piles ~10^5+ events into a
  /// handful of ticks collapses the wheel into a giant sort: resolution
  /// then escalates x64 per step, up to 2^29 ticks/s,
  /// re-filing pending keys under the finer tick map.  The trigger is
  /// occupancy >= kAdaptOccupancy AND a single-tick sorted run of
  /// kCrowdedRun+ entries actually observed — occupancy alone cannot
  /// tell a same-instant pile-up from 10^5 events spread across the horizon,
  /// and for the spread case escalating only multiplies refill windows
  /// (a million-flow CBR fan-in holds ~10^6 live timers at ~3 events per
  /// base tick; finer ticks would be pure overhead there).  Pop order is
  /// exact (time, seq) at any resolution, so escalation never perturbs
  /// determinism.
  static constexpr double kBaseTicksPerSec = 131072.0;   // 2^17
  static constexpr double kMaxTicksPerSec = 536870912.0; // 2^29
  static constexpr std::size_t kAdaptOccupancy = 100000;
  static constexpr std::size_t kCrowdedRun = 4096;

  [[nodiscard]] Wheel::Tick tick_of(Time t) const {
    const double scaled = t * ticks_per_sec_;
    if (scaled <= 0.0) return 0;
    // Clamp far-future sentinels (kTimeInfinity) below the uint64 edge;
    // they order among themselves by exact time in the overflow list.
    constexpr double kMax = 9.0e18;
    if (scaled >= kMax) return static_cast<Wheel::Tick>(kMax);
    return static_cast<Wheel::Tick>(scaled);
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    // slot+1 keeps every valid id distinct from kInvalidEventId.
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }

  std::uint32_t acquire_slot() {
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      // Keep the free list able to hold every slot without reallocating:
      // release_slot() must stay allocation-free even when a burst of
      // one-shot events drains and the freelist grows past any size seen
      // before (the soak test pins this with the counting allocator).
      free_.reserve(slots_.capacity());
    } else {
      slot = free_.back();
      free_.pop_back();
    }
    assert(!slots_[slot].live && !slots_[slot].persistent);
    return slot;
  }

  /// Returns a slot to the free list, invalidating outstanding ids.  The
  /// caller accounts for live_.
  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.live = false;
    s.persistent = false;
    s.external = nullptr;
    ++s.gen;
    s.action.reset();
    free_.push_back(slot);
  }

  [[nodiscard]] bool key_live(const Key& k) const {
    const Slot& s = slots_[k.slot];
    return s.live && s.gen == k.gen;
  }

  void push_key(const Key& k) {
    if (!on_wheel_ && backend_ == EventBackend::kAuto &&
        live_ >= kAutoWheelThreshold) {
      migrate_to_wheel();
    }
    if (on_wheel_) {
      if (live_ >= adapt_at_ && wheel_.max_run_length() >= kCrowdedRun &&
          ticks_per_sec_ < kMaxTicksPerSec) {
        escalate_resolution();
      }
      wheel_.insert(k, tick_of(k.time));
    } else {
      heap_.push(k);
    }
  }

  /// Moves every key from the heap onto the wheel (kAuto upgrade).  Stale
  /// keys migrate too and are skimmed as usual when they surface.
  void migrate_to_wheel();

  /// Raises the wheel resolution x64 and re-files every pending key under
  /// the finer tick map (occupancy crossed adapt_at_ while a crowded
  /// sorted run showed the ticks are genuinely too coarse).
  void escalate_resolution();

  /// Discards ordering keys whose slot has been fired/cancelled/re-armed
  /// since, leaving the earliest live key on top and returning it.
  /// Precondition: live_ > 0 (a live key exists).
  const Key* drop_stale();

  /// pop() after drop_stale(): removes the front key (known live) and
  /// retires/fires its slot.  Precondition: live_ > 0 and no stale key on
  /// top.
  Fired pop_front_live();

  std::vector<Slot> slots_;         // slab; addressed by index only
  std::vector<std::uint32_t> free_;
  util::DaryHeap<Key, KeyLess, 4> heap_;
  Wheel wheel_;
  EventBackend backend_ = EventBackend::kAuto;
  bool on_wheel_ = false;
  double ticks_per_sec_ = kBaseTicksPerSec;
  std::size_t adapt_at_ = kAdaptOccupancy;  // x64 after each escalation
  Time last_pop_time_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace ispn::sim
