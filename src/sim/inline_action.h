// A move-only callable with a large inline buffer — the event core's
// replacement for std::function<void()>.
//
// libstdc++'s std::function only stores captures up to 16 bytes inline
// (and only if trivially copyable); anything bigger costs one heap
// allocation per scheduled event.  Simulation actions routinely capture
// two to five pointers (port, packet bookkeeping, measurement sinks), so
// the dominant fixed-shape events — port transmit-complete, source
// next-arrival — must stay allocation-free.  InlineAction stores any
// nothrow-movable callable up to kCapacity bytes in place; larger or
// throwing-move callables fall back to a single heap box (the cold-path
// escape hatch, functionally equivalent to std::function).
//
// Dispatch is one static table per callable type (invoke / relocate /
// destroy), so an InlineAction is buffer + one pointer and moves are a
// memcpy-sized relocate.  Not thread-safe; the simulator is
// single-threaded by design.

#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ispn::sim {

class InlineAction {
 public:
  /// Inline capture budget.  48 bytes = six pointers; sized so every
  /// closure in the simulator's hot paths fits without allocation.
  static constexpr std::size_t kCapacity = 48;

  InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "action must be callable as void()");
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  InlineAction(InlineAction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  /// Destroys the stored callable (used by event cancellation to free
  /// captured state eagerly).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() {
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the callable at `dst` from `src` and destroys the
    /// source — storage-level relocation for InlineAction moves.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static inline const Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static inline const Ops boxed_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  alignas(std::max_align_t) unsigned char buf_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace ispn::sim
