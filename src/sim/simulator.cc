#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::sim {

EventId Simulator::at(Time at, EventAction action) {
  assert(at >= now_ - 1e-12 && "scheduling into the past");
  return queue_.schedule(std::max(at, now_), std::move(action));
}

EventId Simulator::after(Duration delay, EventAction action) {
  assert(delay >= 0 && "negative delay");
  return queue_.schedule(now_ + std::max(delay, 0.0), std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++processed_;
  fired.action();
  return true;
}

std::uint64_t Simulator::run_until(Time end) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= end) {
    step();
    ++n;
  }
  // Advance the clock to the horizon so subsequent after() calls are
  // relative to the end of the run.
  now_ = std::max(now_, end);
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace ispn::sim
