#include "sim/simulator.h"

#include <algorithm>

namespace ispn::sim {

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++processed_;
  fired();
  return true;
}

std::uint64_t Simulator::run_until(Time end) {
  std::uint64_t n = 0;
  EventQueue::Fired fired;
  while (queue_.pop_if_before(end, /*inclusive=*/true, fired)) {
    now_ = fired.time;
    ++processed_;
    fired();
    ++n;
  }
  // Advance the clock to the horizon so subsequent after() calls are
  // relative to the end of the run.
  now_ = std::max(now_, end);
  return n;
}

std::uint64_t Simulator::run_before(Time end) {
  std::uint64_t n = 0;
  EventQueue::Fired fired;
  while (queue_.pop_if_before(end, /*inclusive=*/false, fired)) {
    now_ = fired.time;
    ++processed_;
    fired();
    ++n;
  }
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace ispn::sim
