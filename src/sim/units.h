// Units and shared scalar types for the ISPN simulator.
//
// All simulation time is in seconds (double).  Link capacities are in
// bits per second; packet sizes in bits.  The paper (Appendix) reports
// queueing delays in units of one packet transmission time: 1000-bit
// packets on 1 Mbit/s links, i.e. 1 ms.

#pragma once

#include <cstdint>

namespace ispn::sim {

/// Simulation time, in seconds.
using Time = double;

/// Duration, in seconds.
using Duration = double;

/// Data volume, in bits.
using Bits = double;

/// Link rate, in bits per second.
using Rate = double;

/// Sentinel for "no deadline / end of time".
inline constexpr Time kTimeInfinity = 1e300;

namespace paper {

/// Packet size used throughout the paper's Appendix: 1000 bits.
inline constexpr Bits kPacketBits = 1000.0;

/// Inter-switch link speed: 1 Mbit/s.
inline constexpr Rate kLinkRate = 1e6;

/// Transmission time of one packet (the paper's delay unit): 1 ms.
inline constexpr Duration kPacketTime = kPacketBits / kLinkRate;

/// Switch output buffer: 200 packets.
inline constexpr int kBufferPackets = 200;

/// Average packet generation rate A = 85 pkt/s (all flows).
inline constexpr double kAvgPacketRate = 85.0;

/// Mean burst size B = 5 packets.
inline constexpr double kMeanBurst = 5.0;

/// Peak rate P = 2A.
inline constexpr double kPeakFactor = 2.0;

/// Edge token bucket depth: 50 packets.
inline constexpr double kBucketPackets = 50.0;

/// Simulated duration of each table run: 10 minutes.
inline constexpr Duration kRunSeconds = 600.0;

}  // namespace paper

}  // namespace ispn::sim
