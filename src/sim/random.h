// Deterministic pseudo-random numbers for simulation.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
// so that small integer seeds yield well-mixed states.  Every stochastic
// component of the simulator owns its own Rng (seeded from a master seed and
// a stream id), which makes runs reproducible regardless of event
// interleaving and lets experiments vary one component's randomness at a
// time.
//
// Distributions follow the paper's Appendix:
//   * exponential idle periods,
//   * geometric burst sizes (support {1, 2, ...}),
// plus uniform/Poisson/Bernoulli helpers used by tests and extensions.

#pragma once

#include <cstdint>

#include "sim/units.h"

namespace ispn::sim {

/// xoshiro256++ PRNG with SplitMix64 seeding.  Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from `seed`; distinct `stream` values give decorrelated streams
  /// for the same master seed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull,
               std::uint64_t stream = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Precondition: n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Exponential with mean `mean` (> 0).
  double exponential(double mean);

  /// Geometric on {1, 2, ...} with mean `mean` (>= 1): number of Bernoulli
  /// trials up to and including the first success, p = 1/mean.
  std::uint64_t geometric1(double mean);

  /// Poisson with mean `lambda` (inversion for small lambda, normal
  /// approximation refined by search for large).
  std::uint64_t poisson(double lambda);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();

 private:
  std::uint64_t s_[4];
};

}  // namespace ispn::sim
