// A persistent, re-armable timer — the event core's handle for the
// simulator's recurring work.
//
// Every packet transmission, source emission and retry poll used to pay a
// full EventQueue::schedule() (slot acquire + InlineAction construction)
// and retire cycle per firing.  A Timer binds its action once, for life:
// the action is stored inside the Timer object (a stable address — Ports
// and Sources are not relocatable while running) and the event queue keeps
// only a slab slot pointing at it.  Re-arming is then a pure ordering-key
// insert; arming over a pending arm supersedes it atomically (generation
// bump), so the cancel+schedule dance disappears from the hot path.
//
// Lifetime rules:
//   * The Timer must outlive any pending arm and must be destroyed before
//     its Simulator (the usual member-order discipline: declare the
//     Simulator/Network first, the Timer-owning object after).
//   * Moving a Timer re-points the queue at the new address; the moved-from
//     Timer becomes empty.
//   * An action must not destroy its own Timer while running (re-arming
//     and disarming from inside the action are fine).
//
// pending() is false by the time the action runs, so a handler observing
// "not pending" can re-arm unconditionally.

#pragma once

#include <cassert>
#include <utility>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace ispn::sim {

class Timer {
 public:
  /// An empty timer; usable only as a move-assignment target.
  Timer() noexcept = default;

  /// Binds `action` (any void() callable) for the life of the timer.
  template <typename F>
  Timer(Simulator& sim, F&& action)
      : sim_(&sim), action_(std::forward<F>(action)) {
    slot_ = sim_->queue().create_timer(&action_);
  }

  Timer(Timer&& other) noexcept
      : sim_(other.sim_),
        slot_(other.slot_),
        action_(std::move(other.action_)),
        expiry_(other.expiry_) {
    other.sim_ = nullptr;
    other.slot_ = kInvalidTimerSlot;
    if (sim_ != nullptr) sim_->queue().rebind_timer(slot_, &action_);
  }

  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      release();
      sim_ = other.sim_;
      slot_ = other.slot_;
      action_ = std::move(other.action_);
      expiry_ = other.expiry_;
      other.sim_ = nullptr;
      other.slot_ = kInvalidTimerSlot;
      if (sim_ != nullptr) sim_->queue().rebind_timer(slot_, &action_);
    }
    return *this;
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { release(); }

  /// (Re-)arms for absolute time `at` (clamped to now, like
  /// Simulator::at).  A pending arm is superseded — no cancel needed.
  void arm_at(Time at) {
    assert(sim_ != nullptr && "arming an empty timer");
    assert(at >= sim_->now() - 1e-12 && "arming into the past");
    expiry_ = at > sim_->now() ? at : sim_->now();
    sim_->queue().arm_timer(slot_, expiry_);
  }

  /// (Re-)arms `delay` seconds from now.
  void arm_after(Duration delay) {
    assert(delay >= 0 && "negative delay");
    assert(sim_ != nullptr && "arming an empty timer");
    expiry_ = sim_->now() + (delay > 0 ? delay : 0.0);
    sim_->queue().arm_timer(slot_, expiry_);
  }

  /// Disarms a pending arm.  Returns false if nothing was pending.
  bool disarm() {
    return sim_ != nullptr && sim_->queue().disarm_timer(slot_);
  }

  /// True while an arm is pending (false by the time the action runs).
  [[nodiscard]] bool pending() const {
    return sim_ != nullptr && sim_->queue().timer_armed(slot_);
  }

  /// The instant of the pending arm.  Meaningful only while pending().
  [[nodiscard]] Time expiry() const { return expiry_; }

  /// True if the timer is bound to a simulator (non-empty).
  [[nodiscard]] explicit operator bool() const { return sim_ != nullptr; }

 private:
  void release() {
    if (sim_ != nullptr) {
      sim_->queue().destroy_timer(slot_);
      sim_ = nullptr;
      slot_ = kInvalidTimerSlot;
    }
  }

  Simulator* sim_ = nullptr;
  TimerSlot slot_ = kInvalidTimerSlot;
  InlineAction action_;
  Time expiry_ = 0;
};

template <typename F>
Timer Simulator::make_timer(F&& action) {
  return Timer(*this, std::forward<F>(action));
}

}  // namespace ispn::sim
