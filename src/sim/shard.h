// Sharded conservative-parallel simulation coordinator.
//
// The network is partitioned into domains — one Simulator (clock + event
// queue) per switch plus its attached hosts — and a ShardedEngine drives
// all domains forward in lookahead windows of width W, the minimum
// propagation latency of any cross-domain link:
//
//   round m:
//     1. drain every cross-domain mailbox into its destination domain
//        (arrivals produced during window m-1 land at times >= m*W);
//     2. run the single-threaded control simulator up to the barrier m*W
//        (admission, failures, reroutes — anything that touches global
//        state executes here, between windows, never concurrently with
//        domain work);
//     3. advance to the next non-empty window (SkippingWindowSync jumps
//        over empty ones; SteppingWindowSync walks one at a time — both
//        must agree on results, only on the number of empty rounds);
//     4. run every domain in parallel through [m*W, (m+1)*W) with
//        Simulator::run_before — strictly less than the barrier, so a
//        packet that finishes transmitting at t in the window arrives
//        cross-domain at t + L >= (m+1)*W, i.e. never inside the window
//        being executed.  That is the whole correctness argument, and it
//        is CSZ's per-hop isolation made operational: the propagation
//        latency is a hard lower bound on cross-domain influence.
//
// Determinism: the domain decomposition and the window grid are functions
// of the topology spec alone, never of the worker count, so the sequence
// of events each domain executes — and the (time, mailbox-creation-order)
// merge of cross-domain arrivals — is identical whether 1 or N threads
// execute the rounds.  Shard-count ∈ {1,2,4} is byte-identical by
// construction, which the golden-trace suite and test_shard_diff verify.
//
// Why barrier-per-window and not null-message credits: see README
// ("Parallel simulation").  Short version: the fabrics are dense (every
// switch within two hops of most others), so per-link credit messages
// approach all-to-all chatter with the same effective horizon the barrier
// gives; the barrier costs two condvar sweeps per window, is trivially
// deterministic, and keeps the hot path allocation-free.  The ShardSync
// interface keeps the window-advance policy swappable and unit-testable.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "sim/units.h"

namespace ispn::sim {

/// Window-advance policy: given the current window index and the earliest
/// pending event time across all domains, returns the window index to
/// execute next.  Implementations must never return a window whose start
/// lies after `t_min` (events may not be skipped) and never go backwards.
class ShardSync {
 public:
  virtual ~ShardSync() = default;
  virtual std::uint64_t next_window(std::uint64_t current, Time t_min,
                                    Duration window) const = 0;
  virtual const char* name() const = 0;
};

/// Walks the window grid one step at a time: next is `current` while the
/// earliest event is still inside it, else `current + 1`.  The reference
/// policy — obviously correct, possibly slow across idle gaps.
class SteppingWindowSync final : public ShardSync {
 public:
  std::uint64_t next_window(std::uint64_t current, Time t_min,
                            Duration window) const override;
  const char* name() const override { return "stepping"; }
};

/// Jumps straight to the window containing the earliest pending event.
/// Floating-point floor slop can land one window early (costing one empty
/// round), never late (which would skip events) — pinned by unit test.
class SkippingWindowSync final : public ShardSync {
 public:
  std::uint64_t next_window(std::uint64_t current, Time t_min,
                            Duration window) const override;
  const char* name() const override { return "skipping"; }
};

/// Drives one control simulator plus N domain simulators through
/// barrier-synchronized lookahead windows.  Domain work is spread over a
/// lazily started worker pool; workers == 1 runs everything inline on the
/// calling thread (bit-identical by design, and the configuration the
/// allocation soak runs under).
class ShardedEngine {
 public:
  /// `control` executes global events (admission, failures, stop) at
  /// window barriers; `window` is the lookahead (cross-domain link
  /// latency); `workers` is the thread budget (clamped to [1, #domains]
  /// at run time).
  ShardedEngine(Simulator& control, Duration window, int workers);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Registers a domain clock.  All domains must be added before run().
  void add_domain(Simulator* domain);

  /// Installs the mailbox-drain hook, called at the top of every round
  /// (single-threaded; domains quiescent).
  void set_exchange(std::function<void()> fn) { exchange_ = std::move(fn); }

  /// Swaps the window-advance policy (engine keeps the default Skipping
  /// sync otherwise).  Not owned.
  void set_sync(const ShardSync* sync) { sync_ = sync; }

  /// Runs rounds until every domain, the control simulator and the
  /// mailboxes are all drained.
  void run();

  /// Runs full windows while they start at or before `horizon`, then
  /// clamps the control clock to the horizon.  Monotone and re-entrant:
  /// benches call this repeatedly with growing horizons.
  void run_until(Time horizon);

  [[nodiscard]] bool idle() const;

  /// Events processed across control + all domains.
  [[nodiscard]] std::uint64_t processed() const;

  [[nodiscard]] Duration window() const { return window_; }
  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  /// One synchronization round.  Returns 0 when fully quiescent, 1 after
  /// executing a window, 2 when the next window starts after `bound`
  /// (nothing executed).
  int step_round(Time bound);

  /// Earliest pending event time across control + domains, or
  /// kTimeInfinity when none.
  [[nodiscard]] Time min_next() const;

  void run_parallel(Time window_end);
  void start_workers(int n);
  void stop_workers();
  void worker_main(int index);

  Simulator& control_;
  Duration window_;
  int workers_requested_;
  int workers_ = 1;
  std::vector<Simulator*> domains_;
  std::function<void()> exchange_;
  SkippingWindowSync default_sync_;
  const ShardSync* sync_ = &default_sync_;
  std::uint64_t m_ = 0;        ///< next window index to consider
  std::uint64_t rounds_ = 0;   ///< windows executed (diagnostic)

  // Worker pool: generation-counted barrier.  Workers wake on a new
  // generation, run their domain stripe through window_end_, and the last
  // one to finish signals done.  The mutex handoff gives the control
  // phase happens-before visibility into everything domain threads wrote
  // during the window, and vice versa.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  Time window_end_ = 0;
  bool shutdown_ = false;
};

}  // namespace ispn::sim
