#include "sim/shard.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ispn::sim {

std::uint64_t SteppingWindowSync::next_window(std::uint64_t current,
                                             Time t_min,
                                             Duration window) const {
  // Stay in the current window while the earliest event is inside it.
  return t_min < static_cast<Time>(current + 1) * window ? current
                                                         : current + 1;
}

std::uint64_t SkippingWindowSync::next_window(std::uint64_t current,
                                             Time t_min,
                                             Duration window) const {
  const double idx = std::floor(t_min / window);
  if (idx <= static_cast<double>(current)) return current;
  // floor() slop can only land us EARLY (an extra empty round), never past
  // t_min: if the quotient rounded up across the integer boundary, the
  // resulting window start m*window is still <= t_min because m*window
  // uses the same arithmetic grid the event times were scheduled on.
  constexpr double kMaxWindow = 9.0e18;
  const double clamped = std::min(idx, kMaxWindow);
  auto m = static_cast<std::uint64_t>(clamped);
  if (static_cast<Time>(m) * window > t_min && m > current) --m;
  return std::max(m, current);
}

ShardedEngine::ShardedEngine(Simulator& control, Duration window, int workers)
    : control_(control), window_(window), workers_requested_(workers) {
  assert(window_ > 0 && "lookahead window must be positive");
  assert(workers >= 1);
}

ShardedEngine::~ShardedEngine() { stop_workers(); }

void ShardedEngine::add_domain(Simulator* domain) {
  assert(threads_.empty() && "domains must be added before running");
  domains_.push_back(domain);
}

Time ShardedEngine::min_next() const {
  Time t = kTimeInfinity;
  if (!control_.queue().empty()) t = control_.queue().next_time();
  for (const Simulator* d : domains_) {
    if (!d->queue().empty()) t = std::min(t, d->queue().next_time());
  }
  return t;
}

int ShardedEngine::step_round(Time bound) {
  // 1. Drain mailboxes: arrivals produced in the previous window are
  //    scheduled into their destination domains before anyone inspects
  //    queue minima.  Mailboxes therefore never need a term in min_next().
  if (exchange_) exchange_();

  // 2. Control events up to the current barrier (admission decisions,
  //    failures, reroutes scheduled by earlier control work).
  const Time barrier = static_cast<Time>(m_) * window_;
  control_.run_until(barrier);

  // 3. Find the next non-empty window.
  const Time t = min_next();
  if (t >= kTimeInfinity) return 0;  // fully quiescent
  m_ = sync_->next_window(m_, t, window_);
  const Time start = static_cast<Time>(m_) * window_;
  assert(t >= start - 1e-12 && "sync skipped past a pending event");
  if (start > bound) return 2;  // beyond the caller's horizon
  control_.run_until(start);

  // 4. Execute the window on every domain in parallel.
  run_parallel(static_cast<Time>(m_ + 1) * window_);
  ++m_;
  ++rounds_;
  return 1;
}

void ShardedEngine::run() {
  while (step_round(kTimeInfinity) == 1) {
  }
}

void ShardedEngine::run_until(Time horizon) {
  // Execute FULL windows only: splitting a window across two calls would
  // interleave same-window cross-shard pushes differently and flip seq
  // tie-breaks, breaking bit-identical reproducibility of sliced runs.
  while (static_cast<Time>(m_) * window_ <= horizon &&
         step_round(horizon) == 1) {
  }
  // All control events at times <= horizon have fired (control runs to
  // every barrier, and everything control-visible is grid-quantized);
  // clamp its clock so callers can keep scheduling relative to `horizon`.
  control_.run_until(horizon);
}

bool ShardedEngine::idle() const {
  if (!control_.idle()) return false;
  for (const Simulator* d : domains_) {
    if (!d->idle()) return false;
  }
  return true;
}

std::uint64_t ShardedEngine::processed() const {
  std::uint64_t n = control_.processed();
  for (const Simulator* d : domains_) n += d->processed();
  return n;
}

void ShardedEngine::run_parallel(Time window_end) {
  const int n = static_cast<int>(domains_.size());
  if (n == 0) return;
  const int w = std::min(workers_requested_, n);
  if (w <= 1) {
    // Single-worker mode: run inline, no threads at all.  This is the
    // deterministic-by-construction reference the multi-worker path must
    // match, and what the allocation soak exercises.
    for (Simulator* d : domains_) d->run_before(window_end);
    return;
  }
  start_workers(w);
  {
    std::unique_lock<std::mutex> lock(mu_);
    window_end_ = window_end;
    pending_ = workers_;
    ++generation_;
    cv_work_.notify_all();
    cv_done_.wait(lock, [&] { return pending_ == 0; });
  }
}

void ShardedEngine::start_workers(int n) {
  if (!threads_.empty()) return;
  workers_ = n;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

void ShardedEngine::stop_workers() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    cv_work_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ShardedEngine::worker_main(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    Time end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      end = window_end_;
    }
    // Static domain stripe: domain d belongs to worker d % W, a pure
    // function of the domain index, so the assignment never depends on
    // scheduling luck.
    const int n = static_cast<int>(domains_.size());
    for (int d = index; d < n; d += workers_) {
      domains_[static_cast<std::size_t>(d)]->run_before(end);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace ispn::sim
