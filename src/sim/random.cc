#include "sim/random.h"

#include <cassert>
#include <cmath>

namespace ispn::sim {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id into the seed sequence so streams are decorrelated.
  std::uint64_t sm = seed ^ (0xA3C59AC2F0B2FA71ull * (stream + 1));
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  // -mean * ln(U), U in (0, 1].
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::uint64_t Rng::geometric1(double mean) {
  assert(mean >= 1.0);
  if (mean == 1.0) return 1;
  const double p = 1.0 / mean;
  // Inversion: ceil(ln(1-U) / ln(1-p)) on support {1, 2, ...}.
  double u;
  do {
    u = uniform();
  } while (u <= 0.0 || u >= 1.0);
  const double k = std::ceil(std::log(u) / std::log1p(-p));
  return k < 1.0 ? 1 : static_cast<std::uint64_t>(k);
}

std::uint64_t Rng::poisson(double lambda) {
  assert(lambda >= 0);
  if (lambda < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    double prod = 1.0;
    std::uint64_t k = 0;
    do {
      prod *= uniform();
      ++k;
    } while (prod > limit);
    return k - 1;
  }
  // Split recursively: Poisson(a+b) = Poisson(a) + Poisson(b).
  const double half = lambda / 2.0;
  return poisson(half) + poisson(lambda - half);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace ispn::sim
